package orb

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"causeway/internal/analysis"
	"causeway/internal/logdb"
	"causeway/internal/probe"
	"causeway/internal/topology"
	"causeway/internal/transport"
	"causeway/internal/uuid"
)

// calcServant implements Calc; it can fan out to a downstream Calc.
type calcServant struct {
	downstream Calc
	notified   chan string
}

func (c *calcServant) Add(x, y int32) (int32, error) {
	if c.downstream != nil {
		// Nest a remote child call, exercising chain propagation.
		return c.downstream.Add(x, y)
	}
	return x + y, nil
}

func (c *calcServant) Divide(x, y int32) (int32, error) {
	if y == 0 {
		return 0, &CalcError{Reason: "division by zero"}
	}
	return x / y, nil
}

func (c *calcServant) Notify(msg string) error {
	if c.notified != nil {
		c.notified <- msg
	}
	return nil
}

type testEnv struct {
	net   *transport.InprocNetwork
	sinks map[string]*probe.MemorySink
	orbs  []*ORB
}

func newEnv() *testEnv {
	return &testEnv{net: transport.NewInprocNetwork(), sinks: map[string]*probe.MemorySink{}}
}

func (e *testEnv) orb(t testing.TB, procID string, instrumented bool, policy PolicyKind) *ORB {
	t.Helper()
	sink := &probe.MemorySink{}
	e.sinks[procID] = sink
	p, err := probe.New(probe.Config{
		Process: topology.Process{ID: procID, Processor: topology.Processor{ID: procID + "-cpu", Type: "x86"}},
		Sink:    sink,
		Chains:  &uuid.SequentialGenerator{Seed: uint64(len(e.sinks))},
	})
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(Config{
		Process:      topology.Process{ID: procID, Processor: topology.Processor{ID: procID + "-cpu", Type: "x86"}},
		Probes:       p,
		Instrumented: instrumented,
		Policy:       policy,
		Network:      e.net,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.orbs = append(e.orbs, o)
	return o
}

func (e *testEnv) shutdown() {
	for _, o := range e.orbs {
		o.Shutdown()
	}
}

func (e *testEnv) dscg(t testing.TB) *analysis.DSCG {
	t.Helper()
	db := logdb.NewStore()
	for _, s := range e.sinks {
		db.Insert(s.Snapshot()...)
	}
	return analysis.Reconstruct(db)
}

func TestRemoteSyncCallPlain(t *testing.T) {
	env := newEnv()
	defer env.shutdown()
	server := env.orb(t, "server", false, ThreadPerRequest)
	if err := server.Register("calc1", "Calc", "calc", &calcServant{}, DispatchCalc); err != nil {
		t.Fatal(err)
	}
	ep, err := server.ListenInproc("srv")
	if err != nil {
		t.Fatal(err)
	}
	client := env.orb(t, "client", false, ThreadPerRequest)
	stub := NewCalcStub(client.RefTo(ep, "calc1", "Calc", "calc"))
	got, err := stub.Add(2, 3)
	if err != nil || got != 5 {
		t.Fatalf("Add = %d, %v", got, err)
	}
	// Plain deployment: no monitoring records at all.
	if n := env.sinks["server"].Len() + env.sinks["client"].Len(); n != 0 {
		t.Fatalf("plain deployment produced %d records", n)
	}
}

func TestRemoteSyncCallInstrumented(t *testing.T) {
	env := newEnv()
	defer env.shutdown()
	server := env.orb(t, "server", true, ThreadPerRequest)
	if err := server.Register("calc1", "Calc", "calc", &calcServant{}, DispatchCalc); err != nil {
		t.Fatal(err)
	}
	ep, err := server.ListenInproc("srv")
	if err != nil {
		t.Fatal(err)
	}
	client := env.orb(t, "client", true, ThreadPerRequest)
	stub := NewCalcStub(client.RefTo(ep, "calc1", "Calc", "calc"))
	got, err := stub.Add(2, 3)
	if err != nil || got != 5 {
		t.Fatalf("Add = %d, %v", got, err)
	}
	client.Probes().Tunnel().Clear()

	g := env.dscg(t)
	if len(g.Anomalies) != 0 {
		t.Fatalf("anomalies: %v", g.Anomalies)
	}
	if g.Nodes() != 1 {
		t.Fatalf("Nodes = %d", g.Nodes())
	}
	n := g.Trees[0].Roots[0]
	if n.Op.Operation != "add" || n.ClientProcess() != "client" || n.ServerProcess() != "server" {
		t.Fatalf("node = %+v", n.Op)
	}
}

func TestNestedCrossProcessChain(t *testing.T) {
	// client -> front (add) -> back (add): the chain spans three logical
	// processes; all records correlate into one tree.
	env := newEnv()
	defer env.shutdown()
	back := env.orb(t, "back", true, ThreadPerRequest)
	if err := back.Register("calcB", "Calc", "calc", &calcServant{}, DispatchCalc); err != nil {
		t.Fatal(err)
	}
	epB, err := back.ListenInproc("back")
	if err != nil {
		t.Fatal(err)
	}
	front := env.orb(t, "front", true, ThreadPerRequest)
	downstream := NewCalcStub(front.RefTo(epB, "calcB", "Calc", "calc"))
	if err := front.Register("calcF", "Calc", "calc", &calcServant{downstream: downstream}, DispatchCalc); err != nil {
		t.Fatal(err)
	}
	epF, err := front.ListenInproc("front")
	if err != nil {
		t.Fatal(err)
	}
	client := env.orb(t, "client", true, ThreadPerRequest)
	stub := NewCalcStub(client.RefTo(epF, "calcF", "Calc", "calc"))
	got, err := stub.Add(20, 22)
	if err != nil || got != 42 {
		t.Fatalf("Add = %d, %v", got, err)
	}
	client.Probes().Tunnel().Clear()

	g := env.dscg(t)
	if len(g.Anomalies) != 0 {
		t.Fatalf("anomalies: %v", g.Anomalies)
	}
	if g.Nodes() != 2 {
		t.Fatalf("Nodes = %d", g.Nodes())
	}
	outer := g.Trees[0].Roots[0]
	if len(outer.Children) != 1 {
		t.Fatalf("outer children = %d", len(outer.Children))
	}
	inner := outer.Children[0]
	if outer.ServerProcess() != "front" || inner.ServerProcess() != "back" {
		t.Fatalf("processes: outer %s, inner %s", outer.ServerProcess(), inner.ServerProcess())
	}
}

func TestUserExceptionMappedAndTraced(t *testing.T) {
	env := newEnv()
	defer env.shutdown()
	server := env.orb(t, "server", true, ThreadPerRequest)
	if err := server.Register("calc1", "Calc", "calc", &calcServant{}, DispatchCalc); err != nil {
		t.Fatal(err)
	}
	ep, err := server.ListenInproc("srv")
	if err != nil {
		t.Fatal(err)
	}
	client := env.orb(t, "client", true, ThreadPerRequest)
	stub := NewCalcStub(client.RefTo(ep, "calc1", "Calc", "calc"))
	_, err = stub.Divide(1, 0)
	var ce *CalcError
	if !errors.As(err, &ce) || ce.Reason != "division by zero" {
		t.Fatalf("err = %v", err)
	}
	client.Probes().Tunnel().Clear()
	// The failed call still produces a complete, anomaly-free chain.
	g := env.dscg(t)
	if len(g.Anomalies) != 0 || g.Nodes() != 1 {
		t.Fatalf("nodes=%d anomalies=%v", g.Nodes(), g.Anomalies)
	}
}

func TestOnewayAcrossProcesses(t *testing.T) {
	env := newEnv()
	defer env.shutdown()
	notified := make(chan string, 1)
	server := env.orb(t, "server", true, ThreadPerRequest)
	if err := server.Register("calc1", "Calc", "calc", &calcServant{notified: notified}, DispatchCalc); err != nil {
		t.Fatal(err)
	}
	ep, err := server.ListenInproc("srv")
	if err != nil {
		t.Fatal(err)
	}
	client := env.orb(t, "client", true, ThreadPerRequest)
	stub := NewCalcStub(client.RefTo(ep, "calc1", "Calc", "calc"))
	if err := stub.Notify("wake up"); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-notified:
		if msg != "wake up" {
			t.Fatalf("msg = %q", msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("oneway never delivered")
	}
	client.Probes().Tunnel().Clear()
	// Wait for the server-side dispatch to finish logging.
	deadline := time.Now().Add(5 * time.Second)
	for env.sinks["server"].Len() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	g := env.dscg(t)
	if len(g.Anomalies) != 0 || g.Nodes() != 1 {
		t.Fatalf("nodes=%d anomalies=%v", g.Nodes(), g.Anomalies)
	}
	n := g.Trees[0].Roots[0]
	if !n.Oneway || n.SkelStart == nil {
		t.Fatalf("oneway node incomplete: %+v", n)
	}
}

func TestCollocatedFastPath(t *testing.T) {
	env := newEnv()
	defer env.shutdown()
	o := env.orb(t, "single", true, ThreadPerRequest)
	if err := o.Register("calc1", "Calc", "calc", &calcServant{}, DispatchCalc); err != nil {
		t.Fatal(err)
	}
	ep, err := o.ListenInproc("self")
	if err != nil {
		t.Fatal(err)
	}
	stub := NewCalcStub(o.RefTo(ep, "calc1", "Calc", "calc"))
	got, err := stub.Add(1, 2)
	if err != nil || got != 3 {
		t.Fatalf("Add = %d, %v", got, err)
	}
	o.Probes().Tunnel().Clear()
	g := env.dscg(t)
	if g.Nodes() != 1 {
		t.Fatalf("Nodes = %d", g.Nodes())
	}
	if !g.Trees[0].Roots[0].Collocated {
		t.Fatal("call did not take the collocated path")
	}
}

func TestDisableCollocationForcesFullPath(t *testing.T) {
	env := newEnv()
	sink := &probe.MemorySink{}
	env.sinks["single"] = sink
	p, err := probe.New(probe.Config{
		Process: topology.Process{ID: "single", Processor: topology.Processor{ID: "c", Type: "x86"}},
		Sink:    sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	o, err := New(Config{
		Process:            topology.Process{ID: "single", Processor: topology.Processor{ID: "c", Type: "x86"}},
		Probes:             p,
		Instrumented:       true,
		Network:            env.net,
		DisableCollocation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	env.orbs = append(env.orbs, o)
	defer env.shutdown()
	if err := o.Register("calc1", "Calc", "calc", &calcServant{}, DispatchCalc); err != nil {
		t.Fatal(err)
	}
	ep, err := o.ListenInproc("self")
	if err != nil {
		t.Fatal(err)
	}
	stub := NewCalcStub(o.RefTo(ep, "calc1", "Calc", "calc"))
	if got, err := stub.Add(1, 2); err != nil || got != 3 {
		t.Fatalf("Add = %d, %v", got, err)
	}
	o.Probes().Tunnel().Clear()
	g := env.dscg(t)
	if g.Nodes() != 1 || g.Trees[0].Roots[0].Collocated {
		t.Fatal("collocation not disabled")
	}
}

func TestMixedInstrumentationIsWireIncompatible(t *testing.T) {
	// An instrumented client against a plain server must fail loudly (the
	// paper's deployments are governed by one compiler flag; mixing is a
	// configuration error, not silent corruption).
	env := newEnv()
	defer env.shutdown()
	server := env.orb(t, "server", false, ThreadPerRequest)
	if err := server.Register("calc1", "Calc", "calc", &calcServant{}, DispatchCalc); err != nil {
		t.Fatal(err)
	}
	ep, err := server.ListenInproc("srv")
	if err != nil {
		t.Fatal(err)
	}
	client := env.orb(t, "client", true, ThreadPerRequest)
	stub := NewCalcStub(client.RefTo(ep, "calc1", "Calc", "calc"))
	if _, err := stub.Add(2, 3); err == nil {
		t.Fatal("mixed instrumented/plain call succeeded")
	}
	client.Probes().Tunnel().Clear()
}

func TestUnknownObjectAndOperation(t *testing.T) {
	env := newEnv()
	defer env.shutdown()
	server := env.orb(t, "server", false, ThreadPerRequest)
	if err := server.Register("calc1", "Calc", "calc", &calcServant{}, DispatchCalc); err != nil {
		t.Fatal(err)
	}
	ep, err := server.ListenInproc("srv")
	if err != nil {
		t.Fatal(err)
	}
	client := env.orb(t, "client", false, ThreadPerRequest)

	// Unknown object.
	stub := NewCalcStub(client.RefTo(ep, "ghost", "Calc", "calc"))
	_, err = stub.Add(1, 1)
	var se *SystemException
	if !errors.As(err, &se) || se.Code != CodeObjectNotExist {
		t.Fatalf("unknown object err = %v", err)
	}

	// Unknown operation (raw invoke).
	ref := client.RefTo(ep, "calc1", "Calc", "calc")
	rep, err := ref.Invoke("bogus", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ReplyToError(rep); err == nil {
		t.Fatal("bogus operation succeeded")
	} else if !errors.As(err, &se) || se.Code != CodeBadOperation {
		t.Fatalf("bogus op err = %v", err)
	}
}

func TestThreadingPoliciesServeConcurrentClients(t *testing.T) {
	for _, pol := range []PolicyKind{ThreadPerRequest, ThreadPerConnection, ThreadPool} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			env := newEnv()
			defer env.shutdown()
			server := env.orb(t, "server", true, pol)
			if err := server.Register("calc1", "Calc", "calc", &calcServant{}, DispatchCalc); err != nil {
				t.Fatal(err)
			}
			ep, err := server.ListenInproc("srv")
			if err != nil {
				t.Fatal(err)
			}
			const clients = 6
			var wg sync.WaitGroup
			errs := make(chan error, clients)
			for i := 0; i < clients; i++ {
				c := env.orb(t, fmt.Sprintf("client%d", i), true, ThreadPerRequest)
				wg.Add(1)
				go func(o *ORB) {
					defer wg.Done()
					stub := NewCalcStub(o.RefTo(ep, "calc1", "Calc", "calc"))
					for j := 0; j < 20; j++ {
						if got, err := stub.Add(int32(j), 1); err != nil || got != int32(j)+1 {
							errs <- fmt.Errorf("add: %d, %w", got, err)
							return
						}
					}
					o.Probes().Tunnel().Clear()
				}(c)
			}
			wg.Wait()
			close(errs)
			for e := range errs {
				t.Fatal(e)
			}
			g := env.dscg(t)
			if len(g.Anomalies) != 0 {
				t.Fatalf("anomalies under %v: %v", pol, g.Anomalies)
			}
			if g.Nodes() != clients*20 {
				t.Fatalf("nodes = %d, want %d", g.Nodes(), clients*20)
			}
			// O2: no dispatch thread holds a stale annotation after quiesce.
			if n := server.Probes().Tunnel().Annotated(); n != 0 {
				t.Fatalf("%d stale annotations under %v", n, pol)
			}
		})
	}
}

func TestTCPTransportEndToEnd(t *testing.T) {
	env := newEnv()
	defer env.shutdown()
	server := env.orb(t, "server", true, ThreadPool)
	if err := server.Register("calc1", "Calc", "calc", &calcServant{}, DispatchCalc); err != nil {
		t.Fatal(err)
	}
	ep, err := server.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client := env.orb(t, "client", true, ThreadPerRequest)
	stub := NewCalcStub(client.RefTo(ep, "calc1", "Calc", "calc"))
	if got, err := stub.Add(40, 2); err != nil || got != 42 {
		t.Fatalf("Add over TCP = %d, %v", got, err)
	}
	client.Probes().Tunnel().Clear()
	g := env.dscg(t)
	if g.Nodes() != 1 || len(g.Anomalies) != 0 {
		t.Fatalf("nodes=%d anomalies=%v", g.Nodes(), g.Anomalies)
	}
}

func TestDirectoryResolve(t *testing.T) {
	env := newEnv()
	defer env.shutdown()
	dir := NewDirectory()
	server := env.orb(t, "server", false, ThreadPerRequest)
	if err := server.Register("calc1", "Calc", "calc", &calcServant{}, DispatchCalc); err != nil {
		t.Fatal(err)
	}
	ep, err := server.ListenInproc("srv")
	if err != nil {
		t.Fatal(err)
	}
	dir.Bind("calculator", Binding{Endpoint: ep, Key: "calc1", Interface: "Calc", Component: "calc"})
	client := env.orb(t, "client", false, ThreadPerRequest)
	ref, err := dir.Resolve(client, "calculator")
	if err != nil {
		t.Fatal(err)
	}
	if got, err := NewCalcStub(ref).Add(3, 4); err != nil || got != 7 {
		t.Fatalf("resolved Add = %d, %v", got, err)
	}
	if _, err := dir.Resolve(client, "nope"); err == nil {
		t.Fatal("unbound name resolved")
	}
	if names := dir.Names(); len(names) != 1 || names[0] != "calculator" {
		t.Fatalf("Names = %v", names)
	}
}

func TestDuplicateRegistrationRejected(t *testing.T) {
	env := newEnv()
	defer env.shutdown()
	o := env.orb(t, "p", false, ThreadPerRequest)
	if err := o.Register("k", "Calc", "c", &calcServant{}, DispatchCalc); err != nil {
		t.Fatal(err)
	}
	if err := o.Register("k", "Calc", "c", &calcServant{}, DispatchCalc); err == nil {
		t.Fatal("duplicate key accepted")
	}
}

func TestShutdownIdempotentAndRejectsUse(t *testing.T) {
	env := newEnv()
	o := env.orb(t, "p", false, ThreadPerRequest)
	o.Shutdown()
	o.Shutdown()
	if err := o.Register("k", "I", "c", nil, nil); err == nil {
		t.Fatal("Register after shutdown accepted")
	}
	if _, err := o.client("inproc://x"); err == nil {
		t.Fatal("client after shutdown accepted")
	}
}

func TestMissingProbesRejected(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("ORB without probes accepted")
	}
}
