package orb

// This file hand-writes the stub/skeleton pair for a small Calc interface —
// the golden model the IDL compiler's generated code (package idlgen)
// follows. Keeping a hand-written instance under test pins the probe
// placement, hidden-FTL handling, exception mapping, and collocation fast
// path independent of the generator.

import (
	"errors"
	"fmt"

	"causeway/internal/cdr"
	"causeway/internal/ftl"
	"causeway/internal/gls"
	"causeway/internal/probe"
	"causeway/internal/transport"
)

// CalcError is the IDL `exception CalcError { string reason; }`.
type CalcError struct {
	Reason string
}

// Error implements error.
func (e *CalcError) Error() string { return fmt.Sprintf("CalcError: %s", e.Reason) }

// Calc is the IDL interface:
//
//	interface Calc {
//	    long add(in long x, in long y);
//	    long divide(in long x, in long y) raises (CalcError);
//	    oneway void notify(in string msg);
//	};
type Calc interface {
	Add(x, y int32) (int32, error)
	Divide(x, y int32) (int32, error)
	Notify(msg string) error
}

// CalcStub is the client-side proxy.
type CalcStub struct {
	ref *Ref
}

// NewCalcStub wraps a reference.
func NewCalcStub(ref *Ref) *CalcStub { return &CalcStub{ref: ref} }

var _ Calc = (*CalcStub)(nil)

// Add implements Calc over the wire.
func (s *CalcStub) Add(x, y int32) (int32, error) {
	if sv, ok := s.ref.LocalServant(); ok {
		if impl, ok := sv.(Calc); ok {
			o := s.ref.ORB()
			if o.Instrumented() {
				cctx := o.Probes().CollocStart(s.ref.OpID("add"))
				defer o.Probes().CollocEnd(cctx)
			}
			return impl.Add(x, y)
		}
	}
	o := s.ref.ORB()
	e := cdr.GetEncoder()
	e.PutInt32(x)
	e.PutInt32(y)
	body := e.Bytes()
	var sctx probe.StubCtx
	if o.Instrumented() {
		sctx = o.Probes().StubStart(s.ref.OpID("add"), false)
		body = AppendFTL(body, sctx.Wire)
	}
	rep, err := s.ref.Invoke("add", body)
	// Transports do not reference the request body once Invoke returns, so
	// the pooled encoder can be recycled before the reply is decoded.
	cdr.Put(e)
	if err != nil {
		if o.Instrumented() {
			o.Probes().StubEnd(sctx, sctx.Wire)
		}
		return 0, err
	}
	if o.Instrumented() {
		var rf ftl.FTL
		rep.Body, rf, err = TakeFTL(rep.Body)
		if err != nil {
			return 0, &SystemException{Code: CodeMarshal, Detail: err.Error()}
		}
		o.Probes().StubEnd(sctx, rf)
	}
	if err := ReplyToError(rep); err != nil {
		return 0, err
	}
	d := cdr.NewDecoder(rep.Body)
	res := d.Int32()
	if err := d.Finish(); err != nil {
		return 0, &SystemException{Code: CodeMarshal, Detail: err.Error()}
	}
	return res, nil
}

// Divide implements Calc over the wire, mapping the CalcError exception.
func (s *CalcStub) Divide(x, y int32) (int32, error) {
	if sv, ok := s.ref.LocalServant(); ok {
		if impl, ok := sv.(Calc); ok {
			o := s.ref.ORB()
			if o.Instrumented() {
				cctx := o.Probes().CollocStart(s.ref.OpID("divide"))
				defer o.Probes().CollocEnd(cctx)
			}
			return impl.Divide(x, y)
		}
	}
	o := s.ref.ORB()
	e := cdr.GetEncoder()
	e.PutInt32(x)
	e.PutInt32(y)
	body := e.Bytes()
	var sctx probe.StubCtx
	if o.Instrumented() {
		sctx = o.Probes().StubStart(s.ref.OpID("divide"), false)
		body = AppendFTL(body, sctx.Wire)
	}
	rep, err := s.ref.Invoke("divide", body)
	cdr.Put(e)
	if err != nil {
		if o.Instrumented() {
			o.Probes().StubEnd(sctx, sctx.Wire)
		}
		return 0, err
	}
	if o.Instrumented() {
		var rf ftl.FTL
		rep.Body, rf, err = TakeFTL(rep.Body)
		if err != nil {
			return 0, &SystemException{Code: CodeMarshal, Detail: err.Error()}
		}
		o.Probes().StubEnd(sctx, rf)
	}
	if err := ReplyToError(rep); err != nil {
		var ue *UserException
		if errors.As(err, &ue) && ue.Name == "CalcError" {
			d := cdr.NewDecoder(ue.Body)
			reason := d.String()
			if derr := d.Finish(); derr != nil {
				return 0, &SystemException{Code: CodeMarshal, Detail: derr.Error()}
			}
			return 0, &CalcError{Reason: reason}
		}
		return 0, err
	}
	d := cdr.NewDecoder(rep.Body)
	res := d.Int32()
	if err := d.Finish(); err != nil {
		return 0, &SystemException{Code: CodeMarshal, Detail: err.Error()}
	}
	return res, nil
}

// Notify implements the oneway operation.
func (s *CalcStub) Notify(msg string) error {
	if sv, ok := s.ref.LocalServant(); ok {
		if impl, ok := sv.(Calc); ok {
			// A collocated oneway still executes asynchronously in its own
			// logical thread with a forked chain.
			o := s.ref.ORB()
			if o.Instrumented() {
				sctx := o.Probes().StubStart(s.ref.OpID("notify"), true)
				wire := sctx.Wire
				go func() {
					// The spawned logical thread resolves its identity once
					// and reuses the handle through both skeleton probes.
					self := gls.Self()
					skctx := o.Probes().SkelStartG(self, s.ref.OpID("notify"), wire, true)
					_ = impl.Notify(msg)
					o.Probes().SkelEnd(skctx)
					o.Probes().Tunnel().ClearG(self.ID())
				}()
				o.Probes().StubEnd(sctx, ftl.FTL{})
				return nil
			}
			go func() { _ = impl.Notify(msg) }()
			return nil
		}
	}
	o := s.ref.ORB()
	e := cdr.GetEncoder()
	e.PutString(msg)
	body := e.Bytes()
	var sctx probe.StubCtx
	if o.Instrumented() {
		sctx = o.Probes().StubStart(s.ref.OpID("notify"), true)
		body = AppendFTL(body, sctx.Wire)
	}
	err := s.ref.Post("notify", body)
	if o.Instrumented() {
		o.Probes().StubEnd(sctx, ftl.FTL{})
	}
	cdr.Put(e)
	return err
}

// DispatchCalc is the server-side skeleton entry point. self is the
// dispatch goroutine's identity, resolved once by the ORB; the skeleton
// probes reuse it instead of re-parsing the runtime stack.
func DispatchCalc(o *ORB, servant any, component string, req transport.Request, self gls.G) transport.Reply {
	impl, ok := servant.(Calc)
	if !ok {
		return BadServantReply("Calc")
	}
	body := req.Body
	var f ftl.FTL
	if o.Instrumented() {
		var err error
		body, f, err = TakeFTL(body)
		if err != nil {
			return MarshalErrorReply(err)
		}
	}
	op := probe.OpID{Component: component, Interface: "Calc", Operation: req.Operation, Object: req.ObjectKey}

	switch req.Operation {
	case "add":
		d := cdr.NewDecoder(body)
		x := d.Int32()
		y := d.Int32()
		if err := d.Finish(); err != nil {
			return MarshalErrorReply(err)
		}
		var sctx probe.SkelCtx
		if o.Instrumented() {
			sctx = o.Probes().SkelStartG(self, op, f, false)
		}
		res, err := impl.Add(x, y)
		var rep transport.Reply
		if err != nil {
			rep = systemReply(CodeBadOperation, err.Error())
		} else {
			// Reply encoders are never pooled (the body is handed off via
			// the responder); the zero value keeps the struct off the heap.
			var e cdr.Encoder
			e.PutInt32(res)
			rep = transport.Reply{Status: transport.StatusOK, Body: e.Bytes()}
		}
		if o.Instrumented() {
			rf := o.Probes().SkelEnd(sctx)
			rep.Body = AppendFTL(rep.Body, rf)
		}
		return rep

	case "divide":
		d := cdr.NewDecoder(body)
		x := d.Int32()
		y := d.Int32()
		if err := d.Finish(); err != nil {
			return MarshalErrorReply(err)
		}
		var sctx probe.SkelCtx
		if o.Instrumented() {
			sctx = o.Probes().SkelStartG(self, op, f, false)
		}
		res, err := impl.Divide(x, y)
		var rep transport.Reply
		switch {
		case err == nil:
			var e cdr.Encoder
			e.PutInt32(res)
			rep = transport.Reply{Status: transport.StatusOK, Body: e.Bytes()}
		default:
			var ce *CalcError
			if errors.As(err, &ce) {
				e := cdr.NewEncoder(16)
				e.PutString(ce.Reason)
				rep = UserExceptionReply("CalcError", e.Bytes())
			} else {
				rep = systemReply(CodeBadOperation, err.Error())
			}
		}
		if o.Instrumented() {
			rf := o.Probes().SkelEnd(sctx)
			rep.Body = AppendFTL(rep.Body, rf)
		}
		return rep

	case "notify":
		d := cdr.NewDecoder(body)
		msg := d.String()
		if err := d.Finish(); err != nil {
			return MarshalErrorReply(err)
		}
		var sctx probe.SkelCtx
		if o.Instrumented() {
			sctx = o.Probes().SkelStartG(self, op, f, true)
		}
		_ = impl.Notify(msg)
		if o.Instrumented() {
			o.Probes().SkelEnd(sctx)
		}
		return transport.Reply{Status: transport.StatusOK}

	default:
		return BadOperationReply("Calc", req.Operation)
	}
}
