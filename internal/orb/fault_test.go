package orb

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"causeway/internal/ftl"
	"causeway/internal/probe"
	"causeway/internal/transport"
)

// hungCalc blocks every Add until released — the hung-server scenario.
type hungCalc struct {
	entered chan struct{}
	release chan struct{}
}

func (h *hungCalc) Add(x, y int32) (int32, error) {
	select {
	case h.entered <- struct{}{}:
	default:
	}
	<-h.release
	return x + y, nil
}
func (h *hungCalc) Divide(x, y int32) (int32, error) { return 0, nil }
func (h *hungCalc) Notify(string) error              { return nil }

// TestCallTimeoutHungServerTCP is the acceptance scenario at the ORB
// layer: a TCP server accepts the request and never replies; the stub
// call must fail with a TIMEOUT system exception within 2x the deadline,
// reclaim its pending-map entry, and leak no goroutines.
func TestCallTimeoutHungServerTCP(t *testing.T) {
	env := newEnv()
	defer env.shutdown()
	servant := &hungCalc{entered: make(chan struct{}, 1), release: make(chan struct{})}
	defer close(servant.release) // unblock dispatch so Shutdown can finish

	server := env.orb(t, "server", true, ThreadPerRequest)
	if err := server.Register("calc1", "Calc", "calc", servant, DispatchCalc); err != nil {
		t.Fatal(err)
	}
	ep, err := server.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client := env.orb(t, "client", true, ThreadPerRequest)
	client.cfg.CallTimeout = 100 * time.Millisecond
	stub := NewCalcStub(client.RefTo(ep, "calc1", "Calc", "calc"))

	// Establish the connection (readLoop + server connLoop goroutines are
	// steady-state, not leaks) before taking the goroutine baseline.
	if _, err := stub.Divide(6, 3); err != nil {
		t.Fatalf("warm-up call: %v", err)
	}
	client.Probes().Tunnel().Clear()

	before := runtime.NumGoroutine()
	start := time.Now()
	_, err = stub.Add(2, 3)
	elapsed := time.Since(start)
	client.Probes().Tunnel().Clear()

	var se *SystemException
	if !errors.As(err, &se) || se.Code != CodeTimeout {
		t.Fatalf("err = %v, want %s system exception", err, CodeTimeout)
	}
	if elapsed >= 2*client.cfg.CallTimeout {
		t.Fatalf("timed-out call took %v, want < %v", elapsed, 2*client.cfg.CallTimeout)
	}
	<-servant.entered // the server really did accept and park the request

	// The pending map must be reclaimed on the cached transport client.
	tc, err := client.client(ep)
	if err != nil {
		t.Fatal(err)
	}
	if n := tc.(*transport.TCPClient).Pending(); n != 0 {
		t.Fatalf("pending map holds %d entries after timeout, want 0", n)
	}
	// No goroutine leak: allow the dispatch goroutine that is still parked
	// in the servant (released at cleanup), nothing else accumulating.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before+1 || time.Now().After(deadline) {
			if g > before+1 {
				t.Fatalf("goroutines grew from %d to %d after a timed-out call", before, g)
			}
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The failure leaves the broken-chain probe signature: the client saw
	// stub_start and stub_end, the server only skeleton_start.
	events := map[ftl.Event]int{}
	for _, r := range env.sinks["client"].Snapshot() {
		if r.Op.Operation == "add" {
			events[r.Event]++
		}
	}
	if events[ftl.StubStart] != 1 || events[ftl.StubEnd] != 1 {
		t.Fatalf("client events = %v, want one stub_start and one stub_end", events)
	}
}

// flakyWrap builds a WrapClient hook whose first `failures` Calls/Posts
// fail with a synthetic connection error; the counter is shared across
// redials so an invalidated-and-redialed client does not reset it.
func flakyWrap(failures int) (func(transport.Client) transport.Client, *atomic.Int32, *atomic.Int32) {
	var calls, dials atomic.Int32
	wrap := func(inner transport.Client) transport.Client {
		dials.Add(1)
		return &flakyClient{inner: inner, calls: &calls, failures: int32(failures)}
	}
	return wrap, &calls, &dials
}

type flakyClient struct {
	inner    transport.Client
	calls    *atomic.Int32
	failures int32
}

func (f *flakyClient) Call(req transport.Request) (transport.Reply, error) {
	if f.calls.Add(1) <= f.failures {
		return transport.Reply{}, errors.New("synthetic connection failure")
	}
	return f.inner.Call(req)
}

func (f *flakyClient) Post(req transport.Request) error {
	if f.calls.Add(1) <= f.failures {
		return errors.New("synthetic connection failure")
	}
	return f.inner.Post(req)
}

func (f *flakyClient) Close() error { return f.inner.Close() }

// TestRetryIdempotentRedialsAndBumpsSeq: the first attempt fails with a
// connection error, the retry redials (client invalidation) and succeeds,
// and every probe record in the chain still has a unique sequence number
// because the retry advanced the FTL by the policy stride.
func TestRetryIdempotentRedialsAndBumpsSeq(t *testing.T) {
	env := newEnv()
	defer env.shutdown()
	server := env.orb(t, "server", true, ThreadPerRequest)
	if err := server.Register("calc1", "Calc", "calc", &calcServant{}, DispatchCalc); err != nil {
		t.Fatal(err)
	}
	ep, err := server.ListenInproc("srv")
	if err != nil {
		t.Fatal(err)
	}
	client := env.orb(t, "client", true, ThreadPerRequest)
	wrap, _, dials := flakyWrap(1)
	client.cfg.WrapClient = wrap
	client.cfg.Retry = RetryPolicy{Attempts: 3, Backoff: time.Millisecond}

	ref := client.RefTo(ep, "calc1", "Calc", "calc")
	ref.Idempotent = true
	stub := NewCalcStub(ref)
	got, err := stub.Add(20, 22)
	client.Probes().Tunnel().Clear()
	if err != nil || got != 42 {
		t.Fatalf("Add = %d, %v; want 42 via retry", got, err)
	}
	if d := dials.Load(); d != 2 {
		t.Fatalf("dials = %d, want 2 (original + redial after invalidation)", d)
	}

	// No duplicate sequence numbers anywhere in the chain, and the server
	// events carry the stride offset proving the retry re-sequenced.
	seen := map[uint64]ftl.Event{}
	var maxSeq uint64
	for _, sink := range env.sinks {
		for _, r := range sink.Snapshot() {
			if prev, dup := seen[r.Seq]; dup {
				t.Fatalf("duplicate FTL seq %d (%v and %v)", r.Seq, prev, r.Event)
			}
			seen[r.Seq] = r.Event
			if r.Seq > maxSeq {
				maxSeq = r.Seq
			}
		}
	}
	if maxSeq < 4096 {
		t.Fatalf("max seq %d < default stride 4096: retry did not re-sequence", maxSeq)
	}
	// And the resulting chain still reconstructs without anomalies.
	g := env.dscg(t)
	if len(g.Anomalies) != 0 {
		t.Fatalf("anomalies after clean retry: %v", g.Anomalies)
	}
	if g.Nodes() != 1 {
		t.Fatalf("Nodes = %d, want 1", g.Nodes())
	}
}

// TestNoRetryWithoutIdempotent: the same failing first attempt is NOT
// retried when the reference is not marked idempotent.
func TestNoRetryWithoutIdempotent(t *testing.T) {
	env := newEnv()
	defer env.shutdown()
	server := env.orb(t, "server", true, ThreadPerRequest)
	if err := server.Register("calc1", "Calc", "calc", &calcServant{}, DispatchCalc); err != nil {
		t.Fatal(err)
	}
	ep, err := server.ListenInproc("srv")
	if err != nil {
		t.Fatal(err)
	}
	client := env.orb(t, "client", true, ThreadPerRequest)
	wrap, calls, _ := flakyWrap(1)
	client.cfg.WrapClient = wrap
	client.cfg.Retry = RetryPolicy{Attempts: 3}

	stub := NewCalcStub(client.RefTo(ep, "calc1", "Calc", "calc"))
	_, err = stub.Add(1, 1)
	client.Probes().Tunnel().Clear()
	var se *SystemException
	if !errors.As(err, &se) || se.Code != CodeTransport {
		t.Fatalf("err = %v, want %s system exception", err, CodeTransport)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("non-idempotent call attempted %d times, want 1", n)
	}
}

// TestOnewayPostRetries: oneway posts are always repeat-safe, so a failed
// post retries and the notification is delivered exactly once.
func TestOnewayPostRetries(t *testing.T) {
	env := newEnv()
	defer env.shutdown()
	notified := make(chan string, 4)
	server := env.orb(t, "server", true, ThreadPerRequest)
	if err := server.Register("calc1", "Calc", "calc", &calcServant{notified: notified}, DispatchCalc); err != nil {
		t.Fatal(err)
	}
	ep, err := server.ListenInproc("srv")
	if err != nil {
		t.Fatal(err)
	}
	client := env.orb(t, "client", true, ThreadPerRequest)
	wrap, _, dials := flakyWrap(1)
	client.cfg.WrapClient = wrap
	client.cfg.Retry = RetryPolicy{Attempts: 3, Backoff: time.Millisecond}

	stub := NewCalcStub(client.RefTo(ep, "calc1", "Calc", "calc"))
	if err := stub.Notify("hello"); err != nil {
		t.Fatalf("Notify: %v", err)
	}
	select {
	case msg := <-notified:
		if msg != "hello" {
			t.Fatalf("notified %q", msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("notification never delivered despite retry")
	}
	select {
	case msg := <-notified:
		t.Fatalf("notification delivered twice: %q", msg)
	case <-time.After(50 * time.Millisecond):
	}
	if d := dials.Load(); d != 2 {
		t.Fatalf("dials = %d, want 2", d)
	}
}

// TestRetryStopsOnShutdown: a retry loop must not spin against a shut-down
// ORB; it fails fast with the shutdown code.
func TestRetryStopsOnShutdown(t *testing.T) {
	env := newEnv()
	client := env.orb(t, "client", true, ThreadPerRequest)
	client.cfg.Retry = RetryPolicy{Attempts: 5, Backoff: time.Hour}
	ref := client.RefTo("inproc://nowhere", "k", "Calc", "calc")
	ref.Idempotent = true
	client.Shutdown()
	start := time.Now()
	_, err := ref.Invoke("add", nil)
	var se *SystemException
	if !errors.As(err, &se) || se.Code != CodeShutdown {
		t.Fatalf("err = %v, want %s", err, CodeShutdown)
	}
	if time.Since(start) > time.Second {
		t.Fatal("shutdown retry did not fail fast")
	}
}

// TestRetrySeqBodyCopies: bumping the FTL must not clobber the original
// body shared across attempts.
func TestRetrySeqBodyCopies(t *testing.T) {
	env := newEnv()
	defer env.shutdown()
	client := env.orb(t, "client", true, ThreadPerRequest)
	sctx := client.Probes().StubStart(probe.OpID{Component: "c", Interface: "I", Operation: "op"}, false)
	client.Probes().StubEnd(sctx, sctx.Wire)
	client.Probes().Tunnel().Clear()
	orig := AppendFTL([]byte("params"), sctx.Wire)
	snapshot := append([]byte(nil), orig...)

	b1 := retrySeqBody(orig, 1, 4096)
	b2 := retrySeqBody(orig, 2, 4096)
	if string(orig) != string(snapshot) {
		t.Fatal("retrySeqBody modified the original body")
	}
	_, f1, err := TakeFTL(b1)
	if err != nil {
		t.Fatal(err)
	}
	_, f2, err := TakeFTL(b2)
	if err != nil {
		t.Fatal(err)
	}
	_, f0, err := TakeFTL(orig)
	if err != nil {
		t.Fatal(err)
	}
	if f1.Seq != f0.Seq+4096 || f2.Seq != f0.Seq+8192 {
		t.Fatalf("seqs: base %d, attempt1 %d, attempt2 %d", f0.Seq, f1.Seq, f2.Seq)
	}
	if f1.Chain != f0.Chain || f2.Chain != f0.Chain {
		t.Fatal("retrySeqBody changed the chain id")
	}
	if !strings.HasPrefix(string(b1), "params") {
		t.Fatalf("declared-parameter prefix corrupted: %q", b1)
	}
}
