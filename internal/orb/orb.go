// Package orb is a CORBA-like component runtime — the ORBlite analog the
// monitored applications run on. It provides object adapters, object
// references, request dispatch under selectable threading policies,
// synchronous and oneway invocation, and collocation optimization.
//
// The runtime itself is monitoring-agnostic: probes live in the *generated*
// stubs and skeletons (package idlgen), the FTL rides inside request bodies
// as an extra marshalled parameter, and dispatch threads merely refresh
// their tunnel annotation per observation O2. This mirrors the paper's
// claim that "no CORBA runtime modifications are required" (§2.3).
package orb

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"causeway/internal/gls"
	"causeway/internal/metrics"
	"causeway/internal/probe"
	"causeway/internal/topology"
	"causeway/internal/transport"
)

// DispatchFunc is a generated skeleton entry point: it unmarshals the
// request, invokes the servant, and builds the reply. component is the
// component name the object was registered under, used for monitoring
// records. self is the dispatch goroutine's identity, resolved once by the
// ORB before the skeleton runs; instrumented skeletons hand it to the
// skeleton probes so no probe re-parses the runtime stack.
type DispatchFunc func(o *ORB, servant any, component string, req transport.Request, self gls.G) transport.Reply

// registration is one exported object.
type registration struct {
	key       string
	iface     string
	component string
	servant   any
	dispatch  DispatchFunc
}

// Config assembles an ORB instance — one logical process of the
// application.
type Config struct {
	// Process identifies the hosting logical process.
	Process topology.Process
	// Probes is the process's probe set; required (causality capture is
	// always on in an instrumented deployment, and a plain deployment
	// simply never calls the probes from generated code).
	Probes *probe.Probes
	// Instrumented selects the instrumented stub/skeleton wire format (the
	// hidden FTL parameter). Both sides of a deployment must agree, exactly
	// as the paper's back-end compiler flag governs a whole build (§2.3).
	Instrumented bool
	// Policy selects the server threading architecture; default
	// ThreadPerRequest.
	Policy PolicyKind
	// PoolSize is the worker count for ThreadPool (default 4).
	PoolSize int
	// Network hosts in-process endpoints; required for ListenInproc/Dial
	// of inproc refs.
	Network *transport.InprocNetwork
	// DisableCollocation turns off the collocated-call fast path, forcing
	// same-process calls through the full marshal path (the paper's
	// "collocation optimization turned off" accuracy experiment).
	DisableCollocation bool
	// PinDispatch locks each dispatch to its OS thread for the duration of
	// the call, making per-thread CPU readings (cputime.OSThreadMeter)
	// valid on dispatch threads.
	PinDispatch bool
	// CallTimeout bounds every synchronous invocation issued through this
	// ORB's references: a call not answered in time fails with a TIMEOUT
	// system exception instead of hanging the caller forever. Zero means
	// no deadline (the historical behaviour).
	CallTimeout time.Duration
	// Retry enables bounded retry with jittered backoff for invocations
	// that are safe to repeat — references marked Idempotent, and oneway
	// posts. The zero value disables retry.
	Retry RetryPolicy
	// WrapClient, when set, wraps every transport client the ORB dials —
	// the fault-injection and tracing hook. The wrapped client is what
	// gets cached per endpoint.
	WrapClient func(transport.Client) transport.Client
	// WrapHandler, when set, wraps the ORB's request handler on every
	// endpoint it serves — the server-side fault-injection hook.
	WrapHandler func(transport.Handler) transport.Handler
	// Metrics, when set, receives invocation-layer failure counters
	// (timeouts, retries, system exceptions, per-op errors) and is handed
	// to every TCP transport the ORB dials or serves for wire-traffic
	// accounting.
	Metrics *metrics.Registry
}

// RetryPolicy bounds automatic re-invocation at the ORB layer.
type RetryPolicy struct {
	// Attempts is the total number of tries (first call included); values
	// below 2 disable retry.
	Attempts int
	// Backoff is the delay before the second attempt, doubled per further
	// attempt and jittered over [d/2, d]; zero retries immediately.
	Backoff time.Duration
	// SeqStride is how far each retry attempt advances the hidden FTL
	// sequence number, so an earlier attempt that did execute at the
	// server can never share sequence numbers with the retry's probe
	// events. Zero selects the default of 4096.
	SeqStride uint64
}

// enabled reports whether the policy actually retries.
func (p RetryPolicy) enabled() bool { return p.Attempts > 1 }

// stride returns the effective sequence stride.
func (p RetryPolicy) stride() uint64 {
	if p.SeqStride == 0 {
		return 4096
	}
	return p.SeqStride
}

// ORB is one logical process's runtime instance.
type ORB struct {
	cfg    Config
	policy policy

	mu      sync.Mutex
	objects map[string]*registration
	servers []transport.Server
	clients map[string]transport.Client
	closed  bool
}

// New validates cfg and builds the runtime.
func New(cfg Config) (*ORB, error) {
	if cfg.Probes == nil {
		return nil, errors.New("orb: config requires Probes")
	}
	o := &ORB{
		cfg:     cfg,
		objects: make(map[string]*registration),
		clients: make(map[string]transport.Client),
	}
	switch cfg.Policy {
	case ThreadPerConnection:
		o.policy = newPerConnectionPolicy(64)
	case ThreadPool:
		n := cfg.PoolSize
		if n <= 0 {
			n = 4
		}
		o.policy = newPoolPolicy(n, 256)
	case ThreadPerRequest, 0:
		o.policy = &perRequestPolicy{}
	default:
		return nil, fmt.Errorf("orb: unknown threading policy %v", cfg.Policy)
	}
	return o, nil
}

// Process returns the hosting logical process.
func (o *ORB) Process() topology.Process { return o.cfg.Process }

// Probes returns the process probe set; generated code calls this.
func (o *ORB) Probes() *probe.Probes { return o.cfg.Probes }

// Instrumented reports whether the instrumented wire format is in effect.
func (o *ORB) Instrumented() bool { return o.cfg.Instrumented }

// Register exports a servant under key. iface and component name the
// object for monitoring records; dispatch is the generated skeleton.
func (o *ORB) Register(key, iface, component string, servant any, dispatch DispatchFunc) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return errShutdown
	}
	if _, dup := o.objects[key]; dup {
		return fmt.Errorf("orb: object key %q already registered", key)
	}
	o.objects[key] = &registration{
		key: key, iface: iface, component: component, servant: servant, dispatch: dispatch,
	}
	return nil
}

// lookup finds a registered object.
func (o *ORB) lookup(key string) (*registration, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	r, ok := o.objects[key]
	return r, ok
}

// ListenInproc exports the ORB's objects on an in-process endpoint and
// returns the endpoint string ("inproc://name").
func (o *ORB) ListenInproc(name string) (string, error) {
	if o.cfg.Network == nil {
		return "", errors.New("orb: no InprocNetwork configured")
	}
	srv, err := o.cfg.Network.Listen(name)
	if err != nil {
		return "", err
	}
	return o.serveOn(srv)
}

// ListenTCP exports the ORB's objects on a TCP endpoint and returns the
// endpoint string ("tcp://host:port").
func (o *ORB) ListenTCP(addr string) (string, error) {
	srv, err := transport.ListenTCP(addr)
	if err != nil {
		return "", err
	}
	if ns := o.netStats(); ns != nil {
		srv.SetMetrics(ns)
	}
	return o.serveOn(srv)
}

// netStats resolves the wire-traffic counter family, nil when unmetered.
func (o *ORB) netStats() *metrics.NetStats {
	if o.cfg.Metrics == nil {
		return nil
	}
	return &o.cfg.Metrics.Net
}

func (o *ORB) serveOn(srv transport.Server) (string, error) {
	h := transport.Handler(o.handleRequest)
	if o.cfg.WrapHandler != nil {
		h = o.cfg.WrapHandler(h)
	}
	if err := srv.Serve(h); err != nil {
		srv.Close()
		return "", err
	}
	o.mu.Lock()
	o.servers = append(o.servers, srv)
	o.mu.Unlock()
	addr := srv.Addr()
	if !strings.Contains(addr, "://") {
		addr = "tcp://" + addr
	}
	return addr, nil
}

// handleRequest schedules the dispatch of one incoming request according
// to the threading policy.
func (o *ORB) handleRequest(conn transport.ConnID, req transport.Request, respond transport.Responder) {
	o.policy.dispatch(conn, func(self gls.G) {
		if o.cfg.PinDispatch {
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
		}
		// The policy resolved (and registered) the dispatch goroutine's
		// identity at goroutine birth; the skeleton probes and the
		// post-dispatch clear all reuse the handle — no runtime.Stack parse
		// anywhere on the steady-state dispatch path.
		rep := o.dispatchLocal(req, self)
		// Observation O2: whatever annotation a pooled dispatch thread may
		// still hold from a previous call, the skeleton-start probe
		// refreshes it, and clearing after dispatch guarantees no stale
		// FTL survives the call either way.
		o.cfg.Probes.Tunnel().ClearG(self.ID())
		if !req.Oneway {
			rep.ID = req.ID
			respond(rep)
		}
	})
}

// dispatchLocal resolves the object and runs its generated skeleton.
func (o *ORB) dispatchLocal(req transport.Request, self gls.G) transport.Reply {
	reg, ok := o.lookup(req.ObjectKey)
	if !ok {
		return systemReply(CodeObjectNotExist, fmt.Sprintf("object %q not registered in process %s", req.ObjectKey, o.cfg.Process.ID))
	}
	return reg.dispatch(o, reg.servant, reg.component, req, self)
}

// errShutdown reports use of a shut-down ORB; retry loops stop on it.
var errShutdown = errors.New("orb: shut down")

// client returns (creating if needed) the cached transport client for an
// endpoint of the form "inproc://name" or "tcp://host:port".
func (o *ORB) client(endpoint string) (transport.Client, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return nil, errShutdown
	}
	if c, ok := o.clients[endpoint]; ok {
		return c, nil
	}
	var (
		c   transport.Client
		err error
	)
	switch {
	case strings.HasPrefix(endpoint, "inproc://"):
		if o.cfg.Network == nil {
			return nil, errors.New("orb: no InprocNetwork configured")
		}
		c, err = o.cfg.Network.Dial(strings.TrimPrefix(endpoint, "inproc://"))
	case strings.HasPrefix(endpoint, "tcp://"):
		c, err = transport.DialTCPMetered(strings.TrimPrefix(endpoint, "tcp://"), o.netStats())
	default:
		return nil, fmt.Errorf("orb: unsupported endpoint %q", endpoint)
	}
	if err != nil {
		return nil, err
	}
	if o.cfg.WrapClient != nil {
		c = o.cfg.WrapClient(c)
	}
	o.clients[endpoint] = c
	return c, nil
}

// invalidateClient drops a broken client from the cache so the next call
// redials, closing it if it is still the cached one. A multiplexed TCP
// client never recovers from a connection-fatal error, so without this a
// single disconnect would poison the endpoint for the ORB's lifetime.
func (o *ORB) invalidateClient(endpoint string, c transport.Client) {
	o.mu.Lock()
	cur, ok := o.clients[endpoint]
	if ok && cur == c {
		delete(o.clients, endpoint)
	}
	o.mu.Unlock()
	if ok && cur == c {
		c.Close()
	}
}

// Shutdown stops serving, waits for in-flight dispatches, and closes all
// client connections. It is idempotent.
func (o *ORB) Shutdown() {
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return
	}
	o.closed = true
	servers := o.servers
	clients := o.clients
	o.servers = nil
	o.clients = make(map[string]transport.Client)
	o.mu.Unlock()

	for _, s := range servers {
		s.Close()
	}
	o.policy.shutdown()
	for _, c := range clients {
		c.Close()
	}
}
