package orb

import (
	"fmt"

	"causeway/internal/cdr"
	"causeway/internal/transport"
)

// UserException is the base carried form of an IDL `raises` exception: the
// generated code maps concrete exception types to and from this envelope.
type UserException struct {
	// Name is the IDL exception name (e.g. "PrinterJam").
	Name string
	// Body is the CDR-encoded exception members.
	Body []byte
}

// Error implements error.
func (e *UserException) Error() string {
	return fmt.Sprintf("user exception %s", e.Name)
}

// SystemException reports a runtime-level invocation failure.
type SystemException struct {
	// Code classifies the failure (e.g. "OBJECT_NOT_EXIST").
	Code string
	// Detail is human-readable context.
	Detail string
}

// Error implements error.
func (e *SystemException) Error() string {
	return fmt.Sprintf("system exception %s: %s", e.Code, e.Detail)
}

// System exception codes.
const (
	// CodeObjectNotExist: the object key is not registered at the server.
	CodeObjectNotExist = "OBJECT_NOT_EXIST"
	// CodeBadOperation: the object exists but has no such operation.
	CodeBadOperation = "BAD_OPERATION"
	// CodeMarshal: the request or reply body failed to decode.
	CodeMarshal = "MARSHAL"
	// CodeTransport: the connection failed mid-call.
	CodeTransport = "COMM_FAILURE"
	// CodeTimeout: the call's deadline elapsed before a reply arrived. The
	// invocation may or may not have executed at the server.
	CodeTimeout = "TIMEOUT"
	// CodeShutdown: the ORB is shutting down.
	CodeShutdown = "BAD_INV_ORDER"
)

// encodeUserException builds the reply body for a raised exception.
func encodeUserException(name string, members []byte) []byte {
	e := cdr.NewEncoder(8 + len(name) + len(members))
	e.PutString(name)
	e.PutBytes(members)
	return e.Bytes()
}

// decodeUserException parses a user-exception reply body.
func decodeUserException(body []byte) (*UserException, error) {
	d := cdr.NewDecoder(body)
	name := d.String()
	members := d.Bytes()
	if err := d.Err(); err != nil {
		return nil, err
	}
	return &UserException{Name: name, Body: members}, nil
}

// encodeSystemException builds the reply body for a system exception.
func encodeSystemException(code, detail string) []byte {
	e := cdr.NewEncoder(8 + len(code) + len(detail))
	e.PutString(code)
	e.PutString(detail)
	return e.Bytes()
}

// decodeSystemException parses a system-exception reply body.
func decodeSystemException(body []byte) *SystemException {
	d := cdr.NewDecoder(body)
	code := d.String()
	detail := d.String()
	if d.Err() != nil {
		return &SystemException{Code: CodeMarshal, Detail: "undecodable system exception"}
	}
	return &SystemException{Code: code, Detail: detail}
}

// systemReply is a convenience for dispatch-side failures.
func systemReply(code, detail string) transport.Reply {
	return transport.Reply{Status: transport.StatusSystemException, Body: encodeSystemException(code, detail)}
}

// ReplyToError converts a non-OK reply to the corresponding Go error.
func ReplyToError(rep transport.Reply) error {
	switch rep.Status {
	case transport.StatusOK:
		return nil
	case transport.StatusUserException:
		ue, err := decodeUserException(rep.Body)
		if err != nil {
			return &SystemException{Code: CodeMarshal, Detail: "undecodable user exception"}
		}
		return ue
	default:
		return decodeSystemException(rep.Body)
	}
}

// UserExceptionReply builds the reply for a raised exception; generated
// skeletons call it.
func UserExceptionReply(name string, members []byte) transport.Reply {
	return transport.Reply{Status: transport.StatusUserException, Body: encodeUserException(name, members)}
}

// MarshalErrorReply reports a body that failed to decode.
func MarshalErrorReply(err error) transport.Reply {
	return systemReply(CodeMarshal, err.Error())
}

// BadOperationReply reports an unknown operation on a live object.
func BadOperationReply(iface, op string) transport.Reply {
	return systemReply(CodeBadOperation, fmt.Sprintf("interface %s has no operation %q", iface, op))
}

// BadServantReply reports a servant that does not implement the skeleton's
// interface (a registration error).
func BadServantReply(iface string) transport.Reply {
	return systemReply(CodeBadOperation, fmt.Sprintf("servant does not implement %s", iface))
}
