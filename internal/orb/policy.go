package orb

import (
	"fmt"
	"sync"

	"causeway/internal/gls"
	"causeway/internal/transport"
)

// PolicyKind selects the server threading architecture (§2.2; Schmidt's
// taxonomy [18]): thread-per-request, thread-per-connection, or a thread
// pool. All three satisfy observation O1 — a dispatch thread is dedicated
// to its call until the call finishes — which is what keeps causality
// propagation untangled.
type PolicyKind int

// The supported threading policies.
const (
	// ThreadPerRequest spawns a fresh dispatch thread per incoming call.
	ThreadPerRequest PolicyKind = iota + 1
	// ThreadPerConnection dedicates one dispatch thread per client
	// connection, serving its calls serially.
	ThreadPerConnection
	// ThreadPool serves all calls from a fixed pool of dispatch threads.
	ThreadPool
)

// String names the policy.
func (k PolicyKind) String() string {
	switch k {
	case ThreadPerRequest:
		return "thread-per-request"
	case ThreadPerConnection:
		return "thread-per-connection"
	case ThreadPool:
		return "thread-pool"
	default:
		return fmt.Sprintf("policy(%d)", int(k))
	}
}

// policy schedules dispatch closures onto dispatch threads. Every policy
// owns its dispatch goroutines, so each one pre-registers with gls at
// goroutine birth and hands the resolved handle to the closure: steady-state
// requests never pay a runtime.Stack parse. Pool and per-connection workers
// register once for their lifetime; per-request goroutines are born owned,
// so they register under a synthetic identity (RegisterFresh) and skip the
// parse entirely — on the fast path no dispatch ever touches runtime.Stack.
type policy interface {
	// dispatch runs fn on a dispatch thread chosen by the policy, passing
	// the thread's pre-resolved goroutine identity.
	dispatch(conn transport.ConnID, fn func(self gls.G))
	// shutdown stops accepting work and waits for in-flight dispatches.
	shutdown()
}

// perRequestPolicy: one goroutine per call, reclaimed by the runtime when
// the call finishes (the paper's "reclaimed by the underlying OS").
type perRequestPolicy struct {
	wg sync.WaitGroup
}

func (p *perRequestPolicy) dispatch(_ transport.ConnID, fn func(self gls.G)) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		// Born owned: a fresh goroutine has no prior records, so a synthetic
		// identity serves — no runtime.Stack parse on the per-request path.
		self := gls.RegisterFresh()
		defer gls.Unregister()
		fn(self)
	}()
}

func (p *perRequestPolicy) shutdown() { p.wg.Wait() }

// perConnectionPolicy: a dedicated serial worker per connection. The worker
// physically survives between calls (reclaimed by the ORB, not the OS) —
// the situation observation O2 addresses: it may hold a stale FTL, but each
// new call refreshes the annotation before user code runs.
type perConnectionPolicy struct {
	mu      sync.Mutex
	queues  map[transport.ConnID]chan func(self gls.G)
	wg      sync.WaitGroup
	closed  bool
	backlog int
}

func newPerConnectionPolicy(backlog int) *perConnectionPolicy {
	return &perConnectionPolicy{queues: make(map[transport.ConnID]chan func(self gls.G)), backlog: backlog}
}

func (p *perConnectionPolicy) dispatch(conn transport.ConnID, fn func(self gls.G)) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	q, ok := p.queues[conn]
	if !ok {
		q = make(chan func(self gls.G), p.backlog)
		p.queues[conn] = q
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			self := gls.Register()
			defer gls.Unregister()
			for f := range q {
				f(self)
			}
		}()
	}
	p.mu.Unlock()
	q <- fn
}

func (p *perConnectionPolicy) shutdown() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for _, q := range p.queues {
		close(q)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// poolPolicy: fixed worker pool consuming a shared queue. Workers survive
// across calls and connections; O2 applies as above.
type poolPolicy struct {
	queue chan func(self gls.G)
	wg    sync.WaitGroup
	once  sync.Once
}

func newPoolPolicy(workers, backlog int) *poolPolicy {
	p := &poolPolicy{queue: make(chan func(self gls.G), backlog)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			self := gls.Register()
			defer gls.Unregister()
			for f := range p.queue {
				f(self)
			}
		}()
	}
	return p
}

func (p *poolPolicy) dispatch(_ transport.ConnID, fn func(self gls.G)) {
	defer func() {
		// Dispatch after shutdown: the queue is closed; drop the call, as a
		// real ORB drops requests arriving during shutdown.
		_ = recover()
	}()
	p.queue <- fn
}

func (p *poolPolicy) shutdown() {
	p.once.Do(func() { close(p.queue) })
	p.wg.Wait()
}
