package orb

import (
	"fmt"
	"sort"
	"sync"
)

// Binding is one named object: where it lives and what it is.
type Binding struct {
	Endpoint  string
	Key       string
	Interface string
	Component string
}

// Directory is a simple naming service mapping logical names to object
// bindings. In-binary multi-process configurations share one Directory;
// cross-binary deployments would front it with an exported object (the
// bootstrap problem every ORB solves out-of-band).
type Directory struct {
	mu       sync.RWMutex
	bindings map[string]Binding
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{bindings: make(map[string]Binding)}
}

// Bind registers name → binding, replacing any previous binding.
func (d *Directory) Bind(name string, b Binding) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.bindings[name] = b
}

// Resolve looks a name up and materializes a Ref through o's transports.
func (d *Directory) Resolve(o *ORB, name string) (*Ref, error) {
	d.mu.RLock()
	b, ok := d.bindings[name]
	d.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("orb: name %q not bound", name)
	}
	return o.RefTo(b.Endpoint, b.Key, b.Interface, b.Component), nil
}

// Names returns all bound names, sorted.
func (d *Directory) Names() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.bindings))
	for n := range d.bindings {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
