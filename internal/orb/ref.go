package orb

import (
	"errors"
	"fmt"
	"time"

	"causeway/internal/ftl"
	"causeway/internal/metrics"
	"causeway/internal/probe"
	"causeway/internal/telemetry"
	"causeway/internal/transport"
)

// Ref is a client-side object reference (the IOR analog): which endpoint
// hosts the object, its key, and its interface. Generated stubs wrap a Ref.
type Ref struct {
	orb       *ORB
	Endpoint  string
	Key       string
	Interface string
	Component string
	// Idempotent marks every operation on this reference safe to repeat,
	// opting it into the ORB's RetryPolicy. A timed-out attempt may have
	// executed at the server, so only genuinely repeat-safe objects should
	// set this.
	Idempotent bool
}

// RefTo builds a reference resolvable through this ORB's transports.
func (o *ORB) RefTo(endpoint, key, iface, component string) *Ref {
	return &Ref{orb: o, Endpoint: endpoint, Key: key, Interface: iface, Component: component}
}

// ORB returns the client-side ORB owning the reference.
func (r *Ref) ORB() *ORB { return r.orb }

// OpID builds the monitoring identity for an operation on this object.
func (r *Ref) OpID(operation string) probe.OpID {
	return probe.OpID{
		Component: r.Component,
		Interface: r.Interface,
		Operation: operation,
		Object:    r.Key,
	}
}

// metrics resolves the ORB's registry, nil when unmetered.
func (r *Ref) metrics() *metrics.Registry { return r.orb.cfg.Metrics }

// countFailure records an invocation that ultimately failed with a
// system exception, both in the ORB family and per operation.
func (r *Ref) countFailure(operation string) {
	if m := r.metrics(); m != nil {
		m.ORB.SystemExceptions.Add(1)
		m.Op(metrics.OpKey{Interface: r.Interface, Operation: operation}).Errors.Add(1)
	}
}

// LocalServant resolves the collocated fast path: if the reference's target
// lives in this very ORB instance (same logical process) and collocation
// optimization is enabled, it returns the servant for direct invocation —
// "the stub … locate[s] the object interface pointer directly and therefore
// bypass[es] the skeleton" (§2.1). Generated stubs type-assert the result.
func (r *Ref) LocalServant() (any, bool) {
	if r.orb == nil || r.orb.cfg.DisableCollocation {
		return nil, false
	}
	reg, ok := r.orb.lookup(r.Key)
	if !ok {
		return nil, false
	}
	// Same key registered here: only treat as collocated when the endpoint
	// actually designates this process (one of our servers) — two logical
	// processes in one binary may reuse keys.
	if !r.orb.servesEndpoint(r.Endpoint) {
		return nil, false
	}
	return reg.servant, true
}

// servesEndpoint reports whether this ORB instance listens on endpoint.
func (o *ORB) servesEndpoint(endpoint string) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, s := range o.servers {
		addr := s.Addr()
		if addr == endpoint || "tcp://"+addr == endpoint {
			return true
		}
	}
	return false
}

// Invoke performs a synchronous request carrying a pre-marshalled body and
// returns the raw reply. Generated stubs marshal parameters (and, when
// instrumented, the hidden FTL) into body, then decode the reply body.
//
// A call unanswered within the ORB's CallTimeout fails with a TIMEOUT
// system exception. References marked Idempotent additionally retry under
// the ORB's RetryPolicy: each retry waits a jittered, doubling backoff,
// redials if the connection broke, and offsets the hidden FTL sequence
// number by the policy stride so a retried invocation that executed twice
// still emits probe events with unique sequence numbers.
func (r *Ref) Invoke(operation string, body []byte) (transport.Reply, error) {
	attempts := 1
	policy := r.orb.cfg.Retry
	if r.Idempotent && policy.enabled() {
		attempts = policy.Attempts
	}
	backoff := policy.Backoff
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		attemptBody := body
		if attempt > 0 {
			if m := r.metrics(); m != nil {
				m.ORB.Retries.Add(1)
			}
			if backoff > 0 {
				time.Sleep(telemetry.Jitter(backoff))
				backoff *= 2
			}
			if r.orb.cfg.Instrumented {
				attemptBody = retrySeqBody(body, attempt, policy.stride())
			}
		}
		c, err := r.orb.client(r.Endpoint)
		if err != nil {
			if errors.Is(err, errShutdown) {
				r.countFailure(operation)
				return transport.Reply{}, &SystemException{Code: CodeShutdown, Detail: err.Error()}
			}
			lastErr = &SystemException{Code: CodeTransport, Detail: err.Error()}
			continue
		}
		rep, err := c.Call(transport.Request{
			ObjectKey: r.Key,
			Operation: operation,
			Body:      attemptBody,
			Timeout:   r.orb.cfg.CallTimeout,
		})
		if err == nil {
			return rep, nil
		}
		if errors.Is(err, transport.ErrDeadlineExceeded) {
			// The connection itself is healthy — the peer is just slow or
			// hung — so keep the client cached for other callers.
			if m := r.metrics(); m != nil {
				m.ORB.Timeouts.Add(1)
			}
			lastErr = &SystemException{Code: CodeTimeout, Detail: err.Error()}
			continue
		}
		// Any other Call failure means the connection is unusable; drop it
		// from the cache so the next attempt (or the next caller) redials.
		lastErr = &SystemException{Code: CodeTransport, Detail: err.Error()}
		r.orb.invalidateClient(r.Endpoint, c)
	}
	r.countFailure(operation)
	return transport.Reply{}, lastErr
}

// retrySeqBody returns a copy of body whose hidden trailing FTL has its
// sequence number advanced by attempt*stride. The copy matters: later
// attempts re-derive from the original body, and Encode on the shared
// backing array would clobber it.
func retrySeqBody(body []byte, attempt int, stride uint64) []byte {
	prefix, f, err := TakeFTL(body)
	if err != nil {
		return body
	}
	f.Seq += uint64(attempt) * stride
	out := make([]byte, len(prefix), len(prefix)+ftl.WireSize)
	copy(out, prefix)
	return f.Encode(out)
}

// Post performs a oneway (asynchronous) request. Oneway posts are
// fire-and-forget and therefore always repeat-safe: when the ORB has a
// RetryPolicy, a failed post is retried with the same jittered backoff and
// redial behaviour as idempotent calls.
func (r *Ref) Post(operation string, body []byte) error {
	attempts := 1
	policy := r.orb.cfg.Retry
	if policy.enabled() {
		attempts = policy.Attempts
	}
	backoff := policy.Backoff
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		attemptBody := body
		if attempt > 0 {
			if m := r.metrics(); m != nil {
				m.ORB.Retries.Add(1)
			}
			if backoff > 0 {
				time.Sleep(telemetry.Jitter(backoff))
				backoff *= 2
			}
			if r.orb.cfg.Instrumented {
				attemptBody = retrySeqBody(body, attempt, policy.stride())
			}
		}
		c, err := r.orb.client(r.Endpoint)
		if err != nil {
			if errors.Is(err, errShutdown) {
				r.countFailure(operation)
				return &SystemException{Code: CodeShutdown, Detail: err.Error()}
			}
			lastErr = &SystemException{Code: CodeTransport, Detail: err.Error()}
			continue
		}
		if err := c.Post(transport.Request{
			ObjectKey: r.Key,
			Operation: operation,
			Oneway:    true,
			Body:      attemptBody,
		}); err != nil {
			lastErr = &SystemException{Code: CodeTransport, Detail: err.Error()}
			r.orb.invalidateClient(r.Endpoint, c)
			continue
		}
		return nil
	}
	r.countFailure(operation)
	return lastErr
}

// AppendFTL marshals the hidden in-out FTL parameter after the declared
// parameters (Figure 3); instrumented generated stubs call it.
func AppendFTL(body []byte, f ftl.FTL) []byte { return f.Encode(body) }

// TakeFTL strips the trailing FTL from an instrumented body, returning the
// declared-parameter prefix and the FTL. Instrumented skeletons and stubs
// (for replies) call it.
func TakeFTL(body []byte) ([]byte, ftl.FTL, error) {
	if len(body) < ftl.WireSize {
		return body, ftl.FTL{}, fmt.Errorf("orb: body too short for hidden FTL parameter (%d bytes)", len(body))
	}
	cut := len(body) - ftl.WireSize
	f, _, err := ftl.Decode(body[cut:])
	if err != nil {
		return body, ftl.FTL{}, err
	}
	return body[:cut], f, nil
}
