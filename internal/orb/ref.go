package orb

import (
	"fmt"

	"causeway/internal/ftl"
	"causeway/internal/probe"
	"causeway/internal/transport"
)

// Ref is a client-side object reference (the IOR analog): which endpoint
// hosts the object, its key, and its interface. Generated stubs wrap a Ref.
type Ref struct {
	orb       *ORB
	Endpoint  string
	Key       string
	Interface string
	Component string
}

// RefTo builds a reference resolvable through this ORB's transports.
func (o *ORB) RefTo(endpoint, key, iface, component string) *Ref {
	return &Ref{orb: o, Endpoint: endpoint, Key: key, Interface: iface, Component: component}
}

// ORB returns the client-side ORB owning the reference.
func (r *Ref) ORB() *ORB { return r.orb }

// OpID builds the monitoring identity for an operation on this object.
func (r *Ref) OpID(operation string) probe.OpID {
	return probe.OpID{
		Component: r.Component,
		Interface: r.Interface,
		Operation: operation,
		Object:    r.Key,
	}
}

// LocalServant resolves the collocated fast path: if the reference's target
// lives in this very ORB instance (same logical process) and collocation
// optimization is enabled, it returns the servant for direct invocation —
// "the stub … locate[s] the object interface pointer directly and therefore
// bypass[es] the skeleton" (§2.1). Generated stubs type-assert the result.
func (r *Ref) LocalServant() (any, bool) {
	if r.orb == nil || r.orb.cfg.DisableCollocation {
		return nil, false
	}
	reg, ok := r.orb.lookup(r.Key)
	if !ok {
		return nil, false
	}
	// Same key registered here: only treat as collocated when the endpoint
	// actually designates this process (one of our servers) — two logical
	// processes in one binary may reuse keys.
	if !r.orb.servesEndpoint(r.Endpoint) {
		return nil, false
	}
	return reg.servant, true
}

// servesEndpoint reports whether this ORB instance listens on endpoint.
func (o *ORB) servesEndpoint(endpoint string) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, s := range o.servers {
		addr := s.Addr()
		if addr == endpoint || "tcp://"+addr == endpoint {
			return true
		}
	}
	return false
}

// Invoke performs a synchronous request carrying a pre-marshalled body and
// returns the raw reply. Generated stubs marshal parameters (and, when
// instrumented, the hidden FTL) into body, then decode the reply body.
func (r *Ref) Invoke(operation string, body []byte) (transport.Reply, error) {
	c, err := r.orb.client(r.Endpoint)
	if err != nil {
		return transport.Reply{}, &SystemException{Code: CodeTransport, Detail: err.Error()}
	}
	rep, err := c.Call(transport.Request{
		ObjectKey: r.Key,
		Operation: operation,
		Body:      body,
	})
	if err != nil {
		return transport.Reply{}, &SystemException{Code: CodeTransport, Detail: err.Error()}
	}
	return rep, nil
}

// Post performs a oneway (asynchronous) request.
func (r *Ref) Post(operation string, body []byte) error {
	c, err := r.orb.client(r.Endpoint)
	if err != nil {
		return &SystemException{Code: CodeTransport, Detail: err.Error()}
	}
	if err := c.Post(transport.Request{
		ObjectKey: r.Key,
		Operation: operation,
		Oneway:    true,
		Body:      body,
	}); err != nil {
		return &SystemException{Code: CodeTransport, Detail: err.Error()}
	}
	return nil
}

// AppendFTL marshals the hidden in-out FTL parameter after the declared
// parameters (Figure 3); instrumented generated stubs call it.
func AppendFTL(body []byte, f ftl.FTL) []byte { return f.Encode(body) }

// TakeFTL strips the trailing FTL from an instrumented body, returning the
// declared-parameter prefix and the FTL. Instrumented skeletons and stubs
// (for replies) call it.
func TakeFTL(body []byte) ([]byte, ftl.FTL, error) {
	if len(body) < ftl.WireSize {
		return body, ftl.FTL{}, fmt.Errorf("orb: body too short for hidden FTL parameter (%d bytes)", len(body))
	}
	cut := len(body) - ftl.WireSize
	f, _, err := ftl.Decode(body[cut:])
	if err != nil {
		return body, ftl.FTL{}, err
	}
	return body[:cut], f, nil
}
