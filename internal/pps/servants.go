// Package pps implements the Printing Pipeline Simulator — the paper's §4
// CORBA example application: an ORBlite-based system of 11 components
// ("The PPS system is ORBlite based and consists of 11 components")
// flexibly configured into multiple processes. A print job flows from
// submission through spooling, interpretation, rendering, color
// conversion, halftoning, compression, and marking to finishing, with
// asynchronous status notification and job tracking on the side.
//
// Servants implement the generated ppsgen interfaces and consume real CPU
// through an injectable work function, so the latency and CPU experiments
// observe genuine behaviour.
package pps

import (
	"fmt"
	"sync"

	"causeway/internal/pps/ppsgen"
)

// WorkFunc burns CPU proportional to units; injected so tests can use
// deterministic virtual charging and benches real spinning.
type WorkFunc func(units int)

// submitter is component 1: the front door.
type submitter struct {
	work     WorkFunc
	spooler  ppsgen.Spooler
	tracker  ppsgen.JobTracker
	notifier ppsgen.Notifier
}

var _ ppsgen.JobSubmitter = (*submitter)(nil)

func (s *submitter) Submit(job ppsgen.Job) (int32, error) {
	if job.Pages <= 0 {
		return 0, &ppsgen.JobRejected{Job: job.Id, Reason: "job has no pages"}
	}
	s.work(1)
	if err := s.tracker.Record(job.Id, "submitted"); err != nil {
		return 0, err
	}
	if err := s.notifier.Notify(job.Id, "accepted"); err != nil {
		return 0, err
	}
	if err := s.spooler.Spool(job); err != nil {
		return 0, err
	}
	return job.Id, nil
}

// spooler is component 2: queues jobs and orchestrates the per-page path.
type spooler struct {
	work        WorkFunc
	interpreter ppsgen.Interpreter
	renderer    ppsgen.Renderer
	color       ppsgen.ColorConverter
	halftoner   ppsgen.Halftoner
	compressor  ppsgen.Compressor
	engine      ppsgen.MarkingEngine
	finisher    ppsgen.Finisher
	tracker     ppsgen.JobTracker

	mu    sync.Mutex
	depth int32
}

var _ ppsgen.Spooler = (*spooler)(nil)

func (s *spooler) Spool(job ppsgen.Job) error {
	s.mu.Lock()
	s.depth++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.depth--
		s.mu.Unlock()
	}()
	s.work(1)
	if err := s.tracker.Record(job.Id, "spooled"); err != nil {
		return err
	}
	for page := int32(0); page < job.Pages; page++ {
		if _, err := s.interpreter.Interpret(job, page); err != nil {
			return err
		}
		sheet, err := s.renderer.Render(job, page)
		if err != nil {
			return err
		}
		if job.Color {
			if sheet, err = s.color.Convert(sheet); err != nil {
				return err
			}
		}
		if sheet, err = s.halftoner.Halftone(sheet); err != nil {
			return err
		}
		if sheet, err = s.compressor.Compress(sheet); err != nil {
			return err
		}
		if err := s.engine.Mark(sheet); err != nil {
			return err
		}
	}
	if err := s.finisher.Finish(job.Id, job.Pages); err != nil {
		return err
	}
	return s.tracker.Record(job.Id, "done")
}

func (s *spooler) QueueDepth() (int32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.depth, nil
}

// interpreter is component 3: PDL parsing into display lists.
type interpreter struct{ work WorkFunc }

var _ ppsgen.Interpreter = (*interpreter)(nil)

func (i *interpreter) Interpret(job ppsgen.Job, page int32) (int32, error) {
	i.work(3)
	// Display-list length scales with resolution.
	return job.Dpi/10 + page, nil
}

// renderer is component 4: rasterization.
type renderer struct {
	work WorkFunc
	// rasterBytes sizes the produced sheet payloads.
	rasterBytes int
}

var _ ppsgen.Renderer = (*renderer)(nil)

func (r *renderer) Render(job ppsgen.Job, page int32) (ppsgen.Sheet, error) {
	r.work(5)
	n := r.rasterBytes
	if n <= 0 {
		n = 256
	}
	raster := make([]byte, n)
	for i := range raster {
		raster[i] = byte(int(job.Id) + int(page) + i)
	}
	return ppsgen.Sheet{Job: job.Id, Page: page, Raster: raster}, nil
}

// colorConverter is component 5.
type colorConverter struct{ work WorkFunc }

var _ ppsgen.ColorConverter = (*colorConverter)(nil)

func (c *colorConverter) Convert(sheet ppsgen.Sheet) (ppsgen.Sheet, error) {
	c.work(4)
	for i := range sheet.Raster {
		sheet.Raster[i] ^= 0x5A
	}
	return sheet, nil
}

// halftoner is component 6.
type halftoner struct{ work WorkFunc }

var _ ppsgen.Halftoner = (*halftoner)(nil)

func (h *halftoner) Halftone(sheet ppsgen.Sheet) (ppsgen.Sheet, error) {
	h.work(3)
	for i := range sheet.Raster {
		if sheet.Raster[i] >= 0x80 {
			sheet.Raster[i] = 0xFF
		} else {
			sheet.Raster[i] = 0
		}
	}
	return sheet, nil
}

// compressor is component 7: run-length band compression.
type compressor struct{ work WorkFunc }

var _ ppsgen.Compressor = (*compressor)(nil)

func (c *compressor) Compress(sheet ppsgen.Sheet) (ppsgen.Sheet, error) {
	c.work(2)
	out := make([]byte, 0, len(sheet.Raster)/2+2)
	for i := 0; i < len(sheet.Raster); {
		j := i
		for j < len(sheet.Raster) && sheet.Raster[j] == sheet.Raster[i] && j-i < 255 {
			j++
		}
		out = append(out, byte(j-i), sheet.Raster[i])
		i = j
	}
	sheet.Raster = out
	return sheet, nil
}

// markingEngine is component 8.
type markingEngine struct{ work WorkFunc }

var _ ppsgen.MarkingEngine = (*markingEngine)(nil)

func (m *markingEngine) Mark(sheet ppsgen.Sheet) error {
	if len(sheet.Raster) == 0 {
		return &ppsgen.EngineFault{Unit: "feeder", Code: 13}
	}
	m.work(6)
	return nil
}

func (m *markingEngine) Coverage(sheet ppsgen.Sheet) (float64, error) {
	m.work(1)
	dark := 0
	for _, b := range sheet.Raster {
		if b != 0 {
			dark++
		}
	}
	if len(sheet.Raster) == 0 {
		return 0, nil
	}
	return float64(dark) / float64(len(sheet.Raster)), nil
}

// finisher is component 9.
type finisher struct{ work WorkFunc }

var _ ppsgen.Finisher = (*finisher)(nil)

func (f *finisher) Finish(job int32, pages int32) error {
	f.work(2)
	return nil
}

// jobTracker is component 10.
type jobTracker struct {
	work WorkFunc
	mu   sync.Mutex
	st   map[int32]string
}

var _ ppsgen.JobTracker = (*jobTracker)(nil)

func newJobTracker(work WorkFunc) *jobTracker {
	return &jobTracker{work: work, st: make(map[int32]string)}
}

func (t *jobTracker) Record(job int32, state string) error {
	t.work(1)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.st[job] = state
	return nil
}

func (t *jobTracker) Status(job int32) (string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.st[job]
	if !ok {
		return "", fmt.Errorf("unknown job %d", job)
	}
	return st, nil
}

// notifier is component 11: asynchronous status events.
type notifier struct {
	work WorkFunc
	mu   sync.Mutex
	log  []string
}

var _ ppsgen.Notifier = (*notifier)(nil)

func (n *notifier) Notify(job int32, event string) error {
	n.work(1)
	n.mu.Lock()
	defer n.mu.Unlock()
	n.log = append(n.log, fmt.Sprintf("%d:%s", job, event))
	return nil
}

// Events returns the notifications received so far.
func (n *notifier) Events() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, len(n.log))
	copy(out, n.log)
	return out
}
