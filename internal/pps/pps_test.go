package pps

import (
	"testing"
	"time"

	"causeway/internal/analysis"
	"causeway/internal/cputime"
	"causeway/internal/gls"
	"causeway/internal/logdb"
	"causeway/internal/probe"
	"causeway/internal/transport"
)

func buildPipeline(t testing.TB, opts Options) *Pipeline {
	t.Helper()
	if opts.Network == nil {
		opts.Network = transport.NewInprocNetwork()
	}
	if opts.Work == nil {
		opts.Work = func(int) {} // no CPU burn in unit tests
	}
	p, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Shutdown)
	return p
}

func reconstructPipeline(t testing.TB, p *Pipeline) *analysis.DSCG {
	t.Helper()
	db := logdb.NewStore()
	db.Insert(p.Records()...)
	return analysis.Reconstruct(db)
}

func TestPipelineProcessesJobsFourProcess(t *testing.T) {
	p := buildPipeline(t, Options{Instrumented: true, Layout: FourProcess()})
	const jobs = 3
	if err := p.RunJobs(jobs, 2, true); err != nil {
		t.Fatal(err)
	}
	if err := p.AwaitQuiescent(jobs, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	for id := int32(1); id <= jobs; id++ {
		st, err := p.Tracker.Status(id)
		if err != nil || st != "done" {
			t.Fatalf("job %d status = %q, %v", id, st, err)
		}
		p.ClientORB.Probes().Tunnel().Clear()
	}

	g := reconstructPipeline(t, p)
	if len(g.Anomalies) != 0 {
		t.Fatalf("%d anomalies, first: %v", len(g.Anomalies), g.Anomalies[0])
	}
	// Each job chain: submit(record, notify!, spool(record, [per page:
	// interpret, render, convert, halftone, compress, mark], finish,
	// record)) plus the status query = its own chain.
	// jobs chains from Submit + jobs chains from Status queries.
	if len(g.Trees) != 2*jobs {
		t.Fatalf("trees = %d, want %d", len(g.Trees), 2*jobs)
	}
	// Count per-op nodes for one consistency probe: each job with 2 pages
	// marks 2 sheets.
	marks := 0
	g.Walk(func(n *analysis.Node) {
		if n.Op.Operation == "mark" {
			marks++
		}
	})
	if marks != jobs*2 {
		t.Fatalf("mark invocations = %d, want %d", marks, jobs*2)
	}
	// Cross-process deployment: the chain spans all 4 pipeline processes.
	procs := map[string]bool{}
	g.Walk(func(n *analysis.Node) { procs[n.ServerProcess()] = true })
	for _, want := range []string{"pps0", "pps1", "pps2", "pps3"} {
		if !procs[want] {
			t.Errorf("no invocation executed on %s (got %v)", want, procs)
		}
	}
}

func TestPipelineMonolithicUsesCollocation(t *testing.T) {
	p := buildPipeline(t, Options{Instrumented: true, Layout: Monolithic()})
	if err := p.RunJobs(1, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := p.AwaitQuiescent(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	g := reconstructPipeline(t, p)
	if len(g.Anomalies) != 0 {
		t.Fatalf("anomalies: %v", g.Anomalies)
	}
	colloc, remote := 0, 0
	g.Walk(func(n *analysis.Node) {
		if n.Collocated {
			colloc++
		} else if !n.Oneway {
			remote++
		}
	})
	if colloc == 0 {
		t.Fatal("monolithic layout produced no collocated calls")
	}
	// Only the client→submitter hop crosses processes.
	if remote != 1 {
		t.Fatalf("remote calls = %d, want 1 (client→submitter)", remote)
	}
}

func TestPipelineRejectsBadJob(t *testing.T) {
	p := buildPipeline(t, Options{Instrumented: true})
	err := p.RunJobs(1, 0, false) // zero pages
	if err == nil {
		t.Fatal("zero-page job accepted")
	}
}

func TestPipelinePlainProducesNoRecords(t *testing.T) {
	p := buildPipeline(t, Options{Instrumented: false})
	if err := p.RunJobs(2, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := p.AwaitQuiescent(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := len(p.Records()); got != 0 {
		t.Fatalf("plain pipeline produced %d records", got)
	}
}

func TestPipelineGrayscaleSkipsColorConverter(t *testing.T) {
	p := buildPipeline(t, Options{Instrumented: true})
	if err := p.RunJobs(1, 2, false); err != nil {
		t.Fatal(err)
	}
	g := reconstructPipeline(t, p)
	g.Walk(func(n *analysis.Node) {
		if n.Op.Operation == "convert" {
			t.Error("grayscale job hit the color converter")
		}
	})
}

func TestPipelineCPUAccounting(t *testing.T) {
	// Deterministic CPU: one shared virtual meter charged per work unit;
	// DC at the root must equal total charged (invariant I4 at system
	// scale).
	meter := cputime.NewVirtualMeter(gls.GoroutineID)
	p := buildPipeline(t, Options{
		Instrumented: true,
		Aspects:      probe.AspectCPU,
		Layout:       FourProcess(),
		MeterFor:     func(string) cputime.Meter { return meter },
		Work:         func(units int) { meter.Charge(time.Duration(units) * time.Millisecond) },
	})
	if err := p.RunJobs(1, 1, true); err != nil {
		t.Fatal(err)
	}
	if err := p.AwaitQuiescent(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	g := reconstructPipeline(t, p)
	if len(g.Anomalies) != 0 {
		t.Fatalf("anomalies: %v", g.Anomalies)
	}
	g.ComputeCPU()
	var total time.Duration
	for _, v := range g.TotalCPU() {
		total += v
	}
	if total != meter.Total() {
		t.Fatalf("DSCG total CPU %v != charged %v", total, meter.Total())
	}
	c := analysis.BuildCCSG(g)
	if c.Nodes() == 0 {
		t.Fatal("empty CCSG")
	}
}

func TestLayoutValidation(t *testing.T) {
	bad := FourProcess()
	delete(bad, CompRenderer)
	if _, err := Build(Options{Network: transport.NewInprocNetwork(), Layout: bad}); err == nil {
		t.Fatal("incomplete layout accepted")
	}
	if _, err := Build(Options{}); err == nil {
		t.Fatal("missing network accepted")
	}
}
