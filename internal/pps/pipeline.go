package pps

import (
	"fmt"
	"time"

	"causeway/internal/busy"
	"causeway/internal/cputime"
	"causeway/internal/orb"
	"causeway/internal/pps/ppsgen"
	"causeway/internal/probe"
	"causeway/internal/topology"
	"causeway/internal/transport"
	"causeway/internal/uuid"
	"causeway/internal/vclock"
)

// Component names, in pipeline order.
const (
	CompSubmitter   = "submitter"
	CompSpooler     = "spooler"
	CompInterpreter = "interpreter"
	CompRenderer    = "renderer"
	CompColor       = "colorconverter"
	CompHalftoner   = "halftoner"
	CompCompressor  = "compressor"
	CompEngine      = "markingengine"
	CompFinisher    = "finisher"
	CompTracker     = "jobtracker"
	CompNotifier    = "notifier"
)

// Components lists all 11 PPS components.
var Components = []string{
	CompSubmitter, CompSpooler, CompInterpreter, CompRenderer, CompColor,
	CompHalftoner, CompCompressor, CompEngine, CompFinisher, CompTracker,
	CompNotifier,
}

// Layout assigns components to logical processes.
type Layout map[string]int

// Monolithic puts all 11 components into a single process — the paper's
// "monolithic single-thread configuration" used for interference baselines.
func Monolithic() Layout {
	l := make(Layout, len(Components))
	for _, c := range Components {
		l[c] = 0
	}
	return l
}

// FourProcess is the paper's single-processor 4-process configuration:
// control (submitter/spooler/tracker/notifier), RIP (interpreter/renderer),
// imaging (color/halftone/compress), engine (marking/finisher).
func FourProcess() Layout {
	return Layout{
		CompSubmitter: 0, CompSpooler: 0, CompTracker: 0, CompNotifier: 0,
		CompInterpreter: 1, CompRenderer: 1,
		CompColor: 2, CompHalftoner: 2, CompCompressor: 2,
		CompEngine: 3, CompFinisher: 3,
	}
}

// processCount returns the number of distinct processes a layout uses.
func (l Layout) processCount() int {
	max := 0
	for _, p := range l {
		if p > max {
			max = p
		}
	}
	return max + 1
}

// Options configures a pipeline deployment.
type Options struct {
	// Network hosts the in-process endpoints; required.
	Network *transport.InprocNetwork
	// Layout assigns components to processes; default FourProcess.
	Layout Layout
	// Instrumented selects instrumented stubs/skeletons.
	Instrumented bool
	// Aspects arms latency or CPU probing.
	Aspects probe.Aspect
	// Policy is the server threading policy.
	Policy orb.PolicyKind
	// DisableCollocation forces same-process calls through the full path.
	DisableCollocation bool
	// PinDispatch locks dispatches to OS threads (real CPU metering).
	PinDispatch bool
	// Work is the servant CPU burner; default busy.Iters(units*2000).
	Work WorkFunc
	// MeterFor supplies each process's CPU meter (nil: none).
	MeterFor func(proc string) cputime.Meter
	// ClockFor supplies each process's wall clock (nil: system clock).
	ClockFor func(proc string) vclock.Clock
	// RasterBytes sizes rendered sheets (default 256).
	RasterBytes int
	// EndpointPrefix namespaces the inproc endpoints so several pipelines
	// can share one network.
	EndpointPrefix string
}

// Pipeline is a deployed PPS instance.
type Pipeline struct {
	ORBs       []*orb.ORB
	Sinks      map[string]*probe.MemorySink
	Deployment *topology.Deployment
	Submitter  ppsgen.JobSubmitter
	Tracker    ppsgen.JobTracker
	ClientORB  *orb.ORB

	notifier *notifier
}

// procTypes gives the 4-process configuration the paper's platform mix.
var procTypes = []string{"pa-risc", "x86", "x86", "vxworks-ppc"}

// Build deploys the pipeline.
func Build(opts Options) (*Pipeline, error) {
	if opts.Network == nil {
		return nil, fmt.Errorf("pps: options require Network")
	}
	if opts.Layout == nil {
		opts.Layout = FourProcess()
	}
	if opts.Work == nil {
		opts.Work = func(units int) { busy.Iters(units * 2000) }
	}
	for _, c := range Components {
		if _, ok := opts.Layout[c]; !ok {
			return nil, fmt.Errorf("pps: layout misses component %q", c)
		}
	}

	nproc := opts.Layout.processCount()
	p := &Pipeline{
		Sinks:      make(map[string]*probe.MemorySink, nproc+1),
		Deployment: topology.NewDeployment(),
	}

	newProcess := func(id string, ptype string, seed uint64) (*orb.ORB, error) {
		proc := topology.Process{ID: id, Processor: topology.Processor{ID: id + "-cpu", Type: ptype}}
		if err := p.Deployment.Add(proc); err != nil {
			return nil, err
		}
		sink := &probe.MemorySink{}
		p.Sinks[id] = sink
		var meter cputime.Meter
		if opts.MeterFor != nil {
			meter = opts.MeterFor(id)
		}
		var clock vclock.Clock
		if opts.ClockFor != nil {
			clock = opts.ClockFor(id)
		}
		probes, err := probe.New(probe.Config{
			Process: proc,
			Aspects: opts.Aspects,
			Clock:   clock,
			Meter:   meter,
			Sink:    sink,
			Chains:  &uuid.SequentialGenerator{Seed: seed},
		})
		if err != nil {
			return nil, err
		}
		return orb.New(orb.Config{
			Process:            proc,
			Probes:             probes,
			Instrumented:       opts.Instrumented,
			Policy:             opts.Policy,
			Network:            opts.Network,
			DisableCollocation: opts.DisableCollocation,
			PinDispatch:        opts.PinDispatch,
		})
	}

	endpoints := make([]string, nproc)
	for i := 0; i < nproc; i++ {
		id := fmt.Sprintf("%spps%d", opts.EndpointPrefix, i)
		o, err := newProcess(id, procTypes[i%len(procTypes)], uint64(i)+10)
		if err != nil {
			p.Shutdown()
			return nil, err
		}
		p.ORBs = append(p.ORBs, o)
		ep, err := o.ListenInproc(id)
		if err != nil {
			p.Shutdown()
			return nil, err
		}
		endpoints[i] = ep
	}

	// A dedicated client process drives the pipeline.
	clientORB, err := newProcess(opts.EndpointPrefix+"ppsclient", "x86", 99)
	if err != nil {
		p.Shutdown()
		return nil, err
	}
	p.ClientORB = clientORB

	// ref builds a Ref to a component from the perspective of the process
	// hosting `from` (for inter-servant stubs) or the client.
	ifaceOf := map[string]string{
		CompSubmitter: "JobSubmitter", CompSpooler: "Spooler",
		CompInterpreter: "Interpreter", CompRenderer: "Renderer",
		CompColor: "ColorConverter", CompHalftoner: "Halftoner",
		CompCompressor: "Compressor", CompEngine: "MarkingEngine",
		CompFinisher: "Finisher", CompTracker: "JobTracker",
		CompNotifier: "Notifier",
	}
	ref := func(from *orb.ORB, comp string) *orb.Ref {
		proc := opts.Layout[comp]
		return from.RefTo(endpoints[proc], comp, ifaceOf[comp], comp)
	}
	orbOf := func(comp string) *orb.ORB { return p.ORBs[opts.Layout[comp]] }

	// Wire servants with downstream stubs (each stub resolved through the
	// servant's own hosting ORB so collocation optimization applies).
	trk := newJobTracker(opts.Work)
	ntf := &notifier{work: opts.Work}
	p.notifier = ntf

	sp := &spooler{
		work:        opts.Work,
		interpreter: ppsgen.NewInterpreterStub(ref(orbOf(CompSpooler), CompInterpreter)),
		renderer:    ppsgen.NewRendererStub(ref(orbOf(CompSpooler), CompRenderer)),
		color:       ppsgen.NewColorConverterStub(ref(orbOf(CompSpooler), CompColor)),
		halftoner:   ppsgen.NewHalftonerStub(ref(orbOf(CompSpooler), CompHalftoner)),
		compressor:  ppsgen.NewCompressorStub(ref(orbOf(CompSpooler), CompCompressor)),
		engine:      ppsgen.NewMarkingEngineStub(ref(orbOf(CompSpooler), CompEngine)),
		finisher:    ppsgen.NewFinisherStub(ref(orbOf(CompSpooler), CompFinisher)),
		tracker:     ppsgen.NewJobTrackerStub(ref(orbOf(CompSpooler), CompTracker)),
	}
	sub := &submitter{
		work:     opts.Work,
		spooler:  ppsgen.NewSpoolerStub(ref(orbOf(CompSubmitter), CompSpooler)),
		tracker:  ppsgen.NewJobTrackerStub(ref(orbOf(CompSubmitter), CompTracker)),
		notifier: ppsgen.NewNotifierStub(ref(orbOf(CompSubmitter), CompNotifier)),
	}

	register := func(comp string, err error) error {
		if err != nil {
			return fmt.Errorf("pps: register %s: %w", comp, err)
		}
		return nil
	}
	steps := []error{
		register(CompSubmitter, ppsgen.RegisterJobSubmitter(orbOf(CompSubmitter), CompSubmitter, CompSubmitter, sub)),
		register(CompSpooler, ppsgen.RegisterSpooler(orbOf(CompSpooler), CompSpooler, CompSpooler, sp)),
		register(CompInterpreter, ppsgen.RegisterInterpreter(orbOf(CompInterpreter), CompInterpreter, CompInterpreter, &interpreter{work: opts.Work})),
		register(CompRenderer, ppsgen.RegisterRenderer(orbOf(CompRenderer), CompRenderer, CompRenderer, &renderer{work: opts.Work, rasterBytes: opts.RasterBytes})),
		register(CompColor, ppsgen.RegisterColorConverter(orbOf(CompColor), CompColor, CompColor, &colorConverter{work: opts.Work})),
		register(CompHalftoner, ppsgen.RegisterHalftoner(orbOf(CompHalftoner), CompHalftoner, CompHalftoner, &halftoner{work: opts.Work})),
		register(CompCompressor, ppsgen.RegisterCompressor(orbOf(CompCompressor), CompCompressor, CompCompressor, &compressor{work: opts.Work})),
		register(CompEngine, ppsgen.RegisterMarkingEngine(orbOf(CompEngine), CompEngine, CompEngine, &markingEngine{work: opts.Work})),
		register(CompFinisher, ppsgen.RegisterFinisher(orbOf(CompFinisher), CompFinisher, CompFinisher, &finisher{work: opts.Work})),
		register(CompTracker, ppsgen.RegisterJobTracker(orbOf(CompTracker), CompTracker, CompTracker, trk)),
		register(CompNotifier, ppsgen.RegisterNotifier(orbOf(CompNotifier), CompNotifier, CompNotifier, ntf)),
	}
	for _, err := range steps {
		if err != nil {
			p.Shutdown()
			return nil, err
		}
	}

	p.Submitter = ppsgen.NewJobSubmitterStub(ref(clientORB, CompSubmitter))
	p.Tracker = ppsgen.NewJobTrackerStub(ref(clientORB, CompTracker))
	return p, nil
}

// RunJobs submits n jobs of the given shape, one causal chain each.
func (p *Pipeline) RunJobs(n int, pages int32, color bool) error {
	for i := 0; i < n; i++ {
		job := ppsgen.Job{
			Id:    int32(i + 1),
			Name:  fmt.Sprintf("job-%d", i+1),
			Pages: pages,
			Dpi:   600,
			Color: color,
		}
		if _, err := p.Submitter.Submit(job); err != nil {
			return fmt.Errorf("pps: submit job %d: %w", job.Id, err)
		}
		p.ClientORB.Probes().Tunnel().Clear()
	}
	return nil
}

// Events returns the notifications the notifier received.
func (p *Pipeline) Events() []string { return p.notifier.Events() }

// AwaitQuiescent waits until asynchronous notifications for n jobs landed.
func (p *Pipeline) AwaitQuiescent(jobs int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for len(p.notifier.Events()) < jobs {
		if time.Now().After(deadline) {
			return fmt.Errorf("pps: only %d/%d notifications after %v", len(p.notifier.Events()), jobs, timeout)
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// Records snapshots every process's monitoring records.
func (p *Pipeline) Records() []probe.Record {
	var out []probe.Record
	for _, s := range p.Sinks {
		out = append(out, s.Snapshot()...)
	}
	return out
}

// Shutdown stops every ORB.
func (p *Pipeline) Shutdown() {
	for _, o := range p.ORBs {
		o.Shutdown()
	}
	if p.ClientORB != nil {
		p.ClientORB.Shutdown()
	}
}
