package metrics_test

import (
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"causeway/internal/analysis"
	"causeway/internal/metrics"
)

// TestHistogramMatchesAnalysisDigest pins the bucket-scheme compatibility
// the package promises: a Histogram and the offline analyzer's Digest fed
// identical observations report bit-identical quantiles, across the whole
// bucket range including the <=1ns floor and the clamp bucket.
func TestHistogramMatchesAnalysisDigest(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h metrics.Histogram
	var d analysis.Digest
	obs := []time.Duration{0, 1, 2, 5, 999, time.Microsecond, 300 * time.Second, 1000 * time.Second}
	for i := 0; i < 5000; i++ {
		// Log-uniform spread over 1ns..~100s so every bucket range is hit.
		obs = append(obs, time.Duration(math.Pow(10, rng.Float64()*11)))
	}
	for _, v := range obs {
		h.Observe(v)
		d.Add(v)
	}
	if h.Count() != d.Count() {
		t.Fatalf("count mismatch: histogram %d, digest %d", h.Count(), d.Count())
	}
	for q := 0.0; q <= 1.0; q += 0.01 {
		if got, want := h.Quantile(q), d.Quantile(q); got != want {
			t.Fatalf("q=%.2f: histogram %v, digest %v", q, got, want)
		}
	}
}

// TestMetricsHotPathAllocFree pins the tentpole property: the operations
// the invocation hot path performs — op lookup, counter adds, histogram
// observes — allocate nothing in steady state.
func TestMetricsHotPathAllocFree(t *testing.T) {
	reg := metrics.NewRegistry()
	key := metrics.OpKey{Interface: "Echo", Operation: "echo"}
	reg.Op(key) // one-time creation outside the measurement
	reg.ObserveChain("Echo", time.Millisecond)
	if allocs := testing.AllocsPerRun(500, func() {
		s := reg.Op(key)
		s.Calls.AddAt(7, 1)
		s.Dispatches.Add(1)
		s.StubTime.Observe(42 * time.Microsecond)
		s.SkelTime.Observe(11 * time.Microsecond)
		reg.ORB.Timeouts.Add(1)
		reg.Net.BytesSent.AddAt(7, 128)
		reg.ObserveChain("Echo", 40*time.Microsecond)
	}); allocs != 0 {
		t.Fatalf("hot-path metrics operations allocate %v per run, want 0", allocs)
	}
}

// TestCounterConcurrent exercises the sharded counter under contention
// (run with -race) and checks no increments are lost.
func TestCounterConcurrent(t *testing.T) {
	var c metrics.Counter
	const goroutines, perG = 16, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if i%2 == 0 {
					c.Add(1)
				} else {
					c.AddAt(uint64(g), 1)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*perG {
		t.Fatalf("counter lost updates: %d, want %d", got, goroutines*perG)
	}
}

// TestRegistryExposition checks the text rendering: series presence,
// integer-nanosecond quantiles matching the digest math, named counters,
// and pluggable sources.
func TestRegistryExposition(t *testing.T) {
	reg := metrics.NewRegistry()
	s := reg.Op(metrics.OpKey{Interface: "Echo", Operation: "echo"})
	s.Calls.Add(3)
	s.StubTime.Observe(time.Millisecond)
	reg.ObserveChain("Echo", 2*time.Millisecond)
	reg.Named("causeway_torn_tail_recoveries_total").Add(2)
	reg.RegisterSource("extra", func(w io.Writer) { io.WriteString(w, "extra_series 1\n") })
	var sb strings.Builder
	reg.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{
		`causeway_op_calls_total{iface="Echo",op="echo"} 3`,
		`causeway_op_dispatches_total{iface="Echo",op="echo"} 0`,
		`causeway_op_stub_count{iface="Echo",op="echo"} 1`,
		`causeway_op_stub_ns{iface="Echo",op="echo",q="0.99"} `,
		`causeway_chain_latency_count{iface="Echo"} 1`,
		"causeway_orb_timeouts_total 0",
		"causeway_net_bytes_sent_total 0",
		"causeway_torn_tail_recoveries_total 2",
		"extra_series 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Quantiles agree with the digest math exactly (single observation).
	var d analysis.Digest
	d.Add(2 * time.Millisecond)
	want := `causeway_chain_latency_ns{iface="Echo",q="0.5"} ` + strconv.FormatInt(int64(d.Quantile(0.5)), 10)
	if !strings.Contains(out, want) {
		t.Fatalf("chain latency p50 line %q missing:\n%s", want, out)
	}
	// A replaced source must not duplicate.
	reg.RegisterSource("extra", func(w io.Writer) { io.WriteString(w, "extra_series 2\n") })
	sb.Reset()
	reg.WriteText(&sb)
	if strings.Contains(sb.String(), "extra_series 1") || !strings.Contains(sb.String(), "extra_series 2") {
		t.Fatalf("source replacement failed:\n%s", sb.String())
	}
}
