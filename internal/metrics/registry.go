package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// OpKey identifies one interface method in the registry. It is the
// metrics-plane projection of a probe OpID: component and object instance
// are dropped so the cardinality stays bounded by the IDL, not the
// deployment.
type OpKey struct {
	Interface string
	Operation string
}

// OpStats is the per-operation RED family sampled at the four probes:
// Calls/Dispatches are the request rates seen by the stub and skeleton
// sides, Errors counts invocations that ultimately failed with a system
// exception, and the two histograms hold raw (uncompensated) stub
// round-trip and skeleton service durations. Compensated chain latency —
// the number that matches the offline analyzer — lives in the per-
// interface digests the online monitor feeds (Registry.ObserveChain).
type OpStats struct {
	Calls      Counter // stub_start activations (incl. collocated)
	Dispatches Counter // skel_start activations
	Errors     Counter // invocations failed with a SystemException
	StubTime   Histogram
	SkelTime   Histogram
}

// ORBStats counts invocation-layer failures and recoveries.
type ORBStats struct {
	Timeouts         Counter // attempts that exceeded the call deadline
	Retries          Counter // re-invocation attempts issued
	SystemExceptions Counter // invocations that ultimately failed
}

// NetStats counts the framed TCP transport's wire traffic. LateReplies
// counts replies discarded because their caller had abandoned the call
// (deadline) or they were duplicates.
type NetStats struct {
	BytesSent   Counter
	BytesRecv   Counter
	FramesSent  Counter
	FramesRecv  Counter
	LateReplies Counter
}

// Registry is one process's metrics plane: typed counter families for
// the ORB and transport, per-operation RED stats, per-interface
// compensated-latency digests, free-form named counters, and pluggable
// exposition sources (subsystems that keep their own atomics — the
// telemetry shipper, fault injectors, transport pools — and render
// themselves on scrape).
//
// The lookup maps are copy-on-write: readers (the probe hot path calls Op
// once per invocation) do one atomic load and a map probe — no lock, no
// contention with other readers or with scrapes. Inserting a new key
// copies the map under mu and publishes the copy; the key sets are bounded
// by the IDL, so copies are rare and small.
type Registry struct {
	ORB ORBStats
	Net NetStats

	ops    atomic.Pointer[map[OpKey]*OpStats]
	ifaces atomic.Pointer[map[string]*Histogram]
	named  atomic.Pointer[map[string]*Counter]

	// exemplars, once set, arms exemplar capture on every existing and
	// future histogram in the registry (see ArmExemplars).
	exemplars atomic.Bool

	mu      sync.Mutex // serializes map copies and source registration
	sources []source
}

type source struct {
	name string
	fn   func(io.Writer)
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	ops := make(map[OpKey]*OpStats)
	ifaces := make(map[string]*Histogram)
	named := make(map[string]*Counter)
	r.ops.Store(&ops)
	r.ifaces.Store(&ifaces)
	r.named.Store(&named)
	return r
}

// Op returns (creating on first use) the RED stats for key. The read
// path is one atomic load plus a map probe and never allocates or locks —
// probes call this once per invocation.
func (r *Registry) Op(key OpKey) *OpStats {
	if m := r.ops.Load(); m != nil {
		if s, ok := (*m)[key]; ok {
			return s
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var cur map[OpKey]*OpStats
	if m := r.ops.Load(); m != nil {
		cur = *m
		if s, ok := cur[key]; ok {
			return s
		}
	}
	next := make(map[OpKey]*OpStats, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	s := &OpStats{}
	if r.exemplars.Load() {
		s.StubTime.ArmExemplars()
		s.SkelTime.ArmExemplars()
	}
	next[key] = s
	r.ops.Store(&next)
	return s
}

// Iface returns (creating on first use) the compensated chain-latency
// histogram for an interface. The online monitor feeds it the same
// per-node latencies the offline analyzer aggregates into InterfaceStat.
func (r *Registry) Iface(name string) *Histogram {
	if m := r.ifaces.Load(); m != nil {
		if h, ok := (*m)[name]; ok {
			return h
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var cur map[string]*Histogram
	if m := r.ifaces.Load(); m != nil {
		cur = *m
		if h, ok := cur[name]; ok {
			return h
		}
	}
	next := make(map[string]*Histogram, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	h := &Histogram{}
	if r.exemplars.Load() {
		h.ArmExemplars()
	}
	next[name] = h
	r.ifaces.Store(&next)
	return h
}

// ObserveChain records one compensated invocation latency for iface.
func (r *Registry) ObserveChain(iface string, v time.Duration) {
	r.Iface(iface).Observe(v)
}

// ObserveChainEx records one compensated invocation latency for iface
// and, when exemplars are armed, stamps the observation's chain as the
// bucket exemplar (when is unix nanoseconds).
func (r *Registry) ObserveChainEx(iface string, v time.Duration, chain ChainID, when int64) {
	r.Iface(iface).ObserveEx(v, chain, when)
}

// ArmExemplars enables exemplar capture on every histogram in the
// registry, current and future. Idempotent.
func (r *Registry) ArmExemplars() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.exemplars.Store(true)
	if m := r.ops.Load(); m != nil {
		for _, s := range *m {
			s.StubTime.ArmExemplars()
			s.SkelTime.ArmExemplars()
		}
	}
	if m := r.ifaces.Load(); m != nil {
		for _, h := range *m {
			h.ArmExemplars()
		}
	}
}

// VisitOps calls fn for every registered operation. The snapshot is the
// copy-on-write map at call time; fn must not call back into Op.
func (r *Registry) VisitOps(fn func(OpKey, *OpStats)) {
	if m := r.ops.Load(); m != nil {
		for k, s := range *m {
			fn(k, s)
		}
	}
}

// VisitIfaces calls fn for every interface chain-latency histogram.
func (r *Registry) VisitIfaces(fn func(string, *Histogram)) {
	if m := r.ifaces.Load(); m != nil {
		for name, h := range *m {
			fn(name, h)
		}
	}
}

// Named returns (creating on first use) a free-form counter exposed
// under the given series name — the hook for loss-path counters that
// have no typed family (torn-tail recoveries, injected faults).
func (r *Registry) Named(name string) *Counter {
	if m := r.named.Load(); m != nil {
		if c, ok := (*m)[name]; ok {
			return c
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var cur map[string]*Counter
	if m := r.named.Load(); m != nil {
		cur = *m
		if c, ok := cur[name]; ok {
			return c
		}
	}
	next := make(map[string]*Counter, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	c := &Counter{}
	next[name] = c
	r.named.Store(&next)
	return c
}

// RegisterSource attaches an exposition source: fn is invoked on every
// scrape and appends its own series. Re-registering a name replaces the
// previous source, so rebuilding a subsystem does not duplicate series.
func (r *Registry) RegisterSource(name string, fn func(io.Writer)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.sources {
		if r.sources[i].name == name {
			r.sources[i].fn = fn
			return
		}
	}
	r.sources = append(r.sources, source{name: name, fn: fn})
}

// quantiles rendered per histogram; the three the paper's
// characterization tables use.
var quantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.50},
	{"0.95", 0.95},
	{"0.99", 0.99},
}

// escapeLabel escapes a label value for the text exposition.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// exemplarSuffix renders an OpenMetrics-style exemplar annotation for the
// given bucket, or "" when none was captured: ` # {chain_uuid="..."}
// <value_ns> <unix_ns>`. Consumers that only want the series value cut
// the line at " # " (cluster.ParseSeries does).
func exemplarSuffix(h *Histogram, bucket int) string {
	e, ok := h.BucketExemplar(bucket)
	if !ok {
		return ""
	}
	return fmt.Sprintf(" # {chain_uuid=%q} %d %d", e.Chain.String(), int64(e.Value), e.When)
}

func writeHistogram(w io.Writer, family, labels string, h *Histogram) {
	count := h.Count()
	fmt.Fprintf(w, "%s_count{%s} %d\n", family, labels, count)
	if count == 0 {
		return
	}
	fmt.Fprintf(w, "%s_sum_ns{%s} %d\n", family, labels, int64(h.Sum()))
	fmt.Fprintf(w, "%s_max_ns{%s} %d%s\n", family, labels, int64(h.Max()), exemplarSuffix(h, bucketOf(h.Max())))
	for _, q := range quantiles {
		i := h.quantileBucket(q.q)
		fmt.Fprintf(w, "%s_ns{%s,q=\"%s\"} %d%s\n", family, labels, q.label, int64(BucketValue(i)), exemplarSuffix(h, i))
	}
}

// WriteText renders the whole registry as a text exposition: one
// `name{labels} value` line per series, families sorted, durations in
// integer nanoseconds (so scrapes compare exactly against the offline
// analyzer's digests, no float round-trip).
func (r *Registry) WriteText(w io.Writer) {
	var (
		opKeys     []OpKey
		ifaceNames []string
		namedNames []string
	)
	if m := r.ops.Load(); m != nil {
		opKeys = make([]OpKey, 0, len(*m))
		for k := range *m {
			opKeys = append(opKeys, k)
		}
	}
	if m := r.ifaces.Load(); m != nil {
		ifaceNames = make([]string, 0, len(*m))
		for name := range *m {
			ifaceNames = append(ifaceNames, name)
		}
	}
	if m := r.named.Load(); m != nil {
		namedNames = make([]string, 0, len(*m))
		for name := range *m {
			namedNames = append(namedNames, name)
		}
	}
	r.mu.Lock()
	sources := append([]source(nil), r.sources...)
	r.mu.Unlock()

	sort.Slice(opKeys, func(i, j int) bool {
		if opKeys[i].Interface != opKeys[j].Interface {
			return opKeys[i].Interface < opKeys[j].Interface
		}
		return opKeys[i].Operation < opKeys[j].Operation
	})
	sort.Strings(ifaceNames)
	sort.Strings(namedNames)

	for _, k := range opKeys {
		s := r.Op(k)
		labels := fmt.Sprintf("iface=%q,op=%q", escapeLabel(k.Interface), escapeLabel(k.Operation))
		fmt.Fprintf(w, "causeway_op_calls_total{%s} %d\n", labels, s.Calls.Load())
		fmt.Fprintf(w, "causeway_op_dispatches_total{%s} %d\n", labels, s.Dispatches.Load())
		fmt.Fprintf(w, "causeway_op_errors_total{%s} %d\n", labels, s.Errors.Load())
		writeHistogram(w, "causeway_op_stub", labels, &s.StubTime)
		writeHistogram(w, "causeway_op_skel", labels, &s.SkelTime)
	}
	for _, name := range ifaceNames {
		labels := fmt.Sprintf("iface=%q", escapeLabel(name))
		writeHistogram(w, "causeway_chain_latency", labels, r.Iface(name))
	}

	fmt.Fprintf(w, "causeway_orb_timeouts_total %d\n", r.ORB.Timeouts.Load())
	fmt.Fprintf(w, "causeway_orb_retries_total %d\n", r.ORB.Retries.Load())
	fmt.Fprintf(w, "causeway_orb_system_exceptions_total %d\n", r.ORB.SystemExceptions.Load())

	fmt.Fprintf(w, "causeway_net_bytes_sent_total %d\n", r.Net.BytesSent.Load())
	fmt.Fprintf(w, "causeway_net_bytes_recv_total %d\n", r.Net.BytesRecv.Load())
	fmt.Fprintf(w, "causeway_net_frames_sent_total %d\n", r.Net.FramesSent.Load())
	fmt.Fprintf(w, "causeway_net_frames_recv_total %d\n", r.Net.FramesRecv.Load())
	fmt.Fprintf(w, "causeway_net_late_replies_total %d\n", r.Net.LateReplies.Load())

	for _, name := range namedNames {
		fmt.Fprintf(w, "%s %d\n", name, r.Named(name).Load())
	}
	for _, src := range sources {
		src.fn(w)
	}
}
