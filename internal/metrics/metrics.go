// Package metrics is the in-process metrics plane: goroutine-sharded,
// allocation-free counters and log-linear latency histograms, aggregated
// per operation and per interface by a Registry and rendered as a plain
// text exposition for the /metrics endpoint (internal/debugserver).
//
// The package is deliberately a leaf: it imports only the standard
// library, because everything above it — probes, the ORB, the transport,
// the telemetry shipper, the online monitor — reports into it, and those
// packages sit below the analysis stack in the import graph.
//
// # Bucket compatibility with the offline analyzer
//
// Histogram uses the exact bucket scheme of analysis/quantile's Digest:
// 540 exponential buckets at 5% growth (gamma 1.05), bucket 0 holding
// durations <= 1ns, each bucket represented by its upper bound so
// quantiles never under-report, and the q-quantile read as the first
// bucket whose cumulative count reaches ceil(q*total). Feeding a
// Histogram and a Digest the same observations therefore yields
// bit-identical p50/p95/p99 — the property that lets a live /metrics
// scrape agree with offline InterfaceStat quantiles, asserted by test.
package metrics

import (
	"math"
	"sync/atomic"
	"time"
	"unsafe"
)

// Bucket-scheme constants; these mirror analysis/quantile exactly (the
// equivalence is pinned by TestHistogramMatchesAnalysisDigest).
const (
	// NumBuckets spans 1ns..~290s at 5% growth; larger values clamp to
	// the last bucket.
	NumBuckets = 540
	gamma      = 1.05
)

var logGamma = math.Log(gamma)

// bucketOf maps a duration to its bucket index.
func bucketOf(v time.Duration) int {
	if v <= 1 {
		return 0
	}
	i := int(math.Log(float64(v))/logGamma) + 1
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	return i
}

// BucketValue returns the representative duration of bucket i (its upper
// bound, so quantiles never under-report).
func BucketValue(i int) time.Duration {
	if i == 0 {
		return 1
	}
	return time.Duration(math.Exp(float64(i) * logGamma))
}

// counterShards spreads concurrent writers across cache lines. Power of
// two so the shard pick is a mask, not a division.
const counterShards = 64

// counterShard is one padded slot: the counter occupies its own cache
// line so two goroutines on different shards never false-share.
type counterShard struct {
	n atomic.Uint64
	_ [56]byte
}

// Counter is a goroutine-sharded monotonic counter. Add never allocates
// and scales with writer concurrency; Load sums the shards (reads are
// rare — scrapes — so their cost does not matter).
//
// The zero value is ready to use. Counters must not be copied after use.
type Counter struct {
	shards [counterShards]counterShard
}

// shardHint derives a cheap shard index from the address of a stack
// variable: distinct goroutines run on distinct stacks, so stack-address
// high bits spread concurrent writers across shards without touching the
// runtime. Call sites that already resolved a goroutine id (the probe hot
// path) use AddAt instead and skip even this.
func shardHint() uint64 {
	var marker byte
	return uint64(uintptr(unsafe.Pointer(&marker)) >> 10)
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) {
	c.shards[shardHint()&(counterShards-1)].n.Add(delta)
}

// AddAt increments the counter by delta on the shard selected by hint —
// the form the probe hot path uses with its cached goroutine id, so the
// shard pick costs a mask instead of a stack-address derivation.
func (c *Counter) AddAt(hint, delta uint64) {
	c.shards[hint&(counterShards-1)].n.Add(delta)
}

// Load sums the shards.
func (c *Counter) Load() uint64 {
	var total uint64
	for i := range c.shards {
		total += c.shards[i].n.Load()
	}
	return total
}

// Histogram is a lock-free log-linear latency histogram over durations,
// bucket-compatible with the offline analyzer's Digest (see the package
// comment). Observe never allocates. The zero value is ready to use;
// Histograms must not be copied after use.
type Histogram struct {
	counts [NumBuckets]atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
	// ex, when armed, holds one last-write-wins exemplar slot per bucket
	// (see exemplar.go); nil until ArmExemplars so unarmed histograms pay
	// a single atomic load on the chain-carrying observe path and nothing
	// on Observe.
	ex atomic.Pointer[exemplarSet]
}

// Observe records one duration.
func (h *Histogram) Observe(v time.Duration) {
	h.counts[bucketOf(v)].Add(1)
	h.total.Add(1)
	h.sum.Add(int64(v))
	for {
		cur := h.max.Load()
		if int64(v) <= cur || h.max.CompareAndSwap(cur, int64(v)) {
			return
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum reports the summed observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Max reports the largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile estimates the q-quantile (q in [0,1]); 0 with no
// observations. The algorithm is the Digest's: rank = ceil(q*total),
// first bucket whose cumulative count reaches it, represented by the
// bucket's upper bound. Concurrent Observes may skew a quantile read by
// the in-flight observations; scrapes tolerate that.
func (h *Histogram) Quantile(q float64) time.Duration {
	i := h.quantileBucket(q)
	if i < 0 {
		return 0
	}
	return BucketValue(i)
}
