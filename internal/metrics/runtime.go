package metrics

import (
	"fmt"
	"io"
	"runtime"
	"time"
)

// RuntimeSource returns an exposition source emitting the process's Go
// runtime gauges under the causeway_go_* family: goroutine count, heap
// bytes, GC activity, and uptime relative to start. Register it on a
// Registry via RegisterSource so every scrape carries fresh values:
//
//	reg.RegisterSource("go_runtime", metrics.RuntimeSource(time.Now()))
//
// ReadMemStats is a stop-the-world read, but it runs only on scrape —
// never on the probe path.
func RuntimeSource(start time.Time) func(io.Writer) {
	return func(w io.Writer) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		fmt.Fprintf(w, "causeway_go_goroutines %d\n", runtime.NumGoroutine())
		fmt.Fprintf(w, "causeway_go_heap_alloc_bytes %d\n", ms.HeapAlloc)
		fmt.Fprintf(w, "causeway_go_heap_sys_bytes %d\n", ms.HeapSys)
		fmt.Fprintf(w, "causeway_go_gc_cycles_total %d\n", ms.NumGC)
		fmt.Fprintf(w, "causeway_go_gc_pause_total_ns %d\n", ms.PauseTotalNs)
		fmt.Fprintf(w, "causeway_go_uptime_seconds %d\n", int64(time.Since(start).Seconds()))
	}
}
