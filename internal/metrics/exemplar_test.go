package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func chainID(b byte) ChainID {
	var c ChainID
	for i := range c {
		c[i] = b
	}
	return c
}

func TestExemplarLastWriteWins(t *testing.T) {
	var h Histogram
	h.ArmExemplars()
	v := 10 * time.Millisecond
	h.ObserveEx(v, chainID(1), 100)
	h.ObserveEx(v, chainID(2), 200)
	e, ok := h.BucketExemplar(bucketOf(v))
	if !ok {
		t.Fatal("no exemplar captured")
	}
	if e.Chain != chainID(2) || e.When != 200 || e.Value != v {
		t.Fatalf("exemplar = %+v, want chain 2 when 200 value %v", e, v)
	}
}

func TestExemplarZeroChainAndUnarmed(t *testing.T) {
	var h Histogram
	// Unarmed: chain-carrying observes count but capture nothing.
	h.ObserveEx(time.Millisecond, chainID(1), 1)
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if _, ok := h.BucketExemplar(bucketOf(time.Millisecond)); ok {
		t.Fatal("unarmed histogram captured an exemplar")
	}
	// Armed: a zero chain is the "no exemplar" sentinel.
	h.ArmExemplars()
	h.ObserveEx(time.Millisecond, ChainID{}, 2)
	if _, ok := h.BucketExemplar(bucketOf(time.Millisecond)); ok {
		t.Fatal("zero chain stamped an exemplar")
	}
}

func TestExemplarQuantileEquivalence(t *testing.T) {
	// Arming exemplars must not perturb the histogram counts: armed and
	// unarmed histograms fed the same observations agree on everything.
	var plain, armed Histogram
	armed.ArmExemplars()
	for i := 1; i <= 1000; i++ {
		v := time.Duration(i) * time.Microsecond
		plain.Observe(v)
		armed.ObserveEx(v, chainID(byte(i)), int64(i))
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 1} {
		if plain.Quantile(q) != armed.Quantile(q) {
			t.Fatalf("q=%v: plain %v != armed %v", q, plain.Quantile(q), armed.Quantile(q))
		}
	}
	if plain.Count() != armed.Count() || plain.Sum() != armed.Sum() || plain.Max() != armed.Max() {
		t.Fatal("count/sum/max diverge between plain and armed histograms")
	}
}

func TestExemplarConcurrentStamp(t *testing.T) {
	var h Histogram
	h.ArmExemplars()
	const writers = 8
	var writeWG, readWG sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers race the writers; the seqlock must always hand
	// back either no exemplar or a consistent one (uniform chain bytes).
	for r := 0; r < 2; r++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if e, ok := h.BucketExemplar(bucketOf(time.Millisecond)); ok {
					for _, b := range e.Chain[1:] {
						if b != e.Chain[0] {
							t.Error("torn exemplar read")
							return
						}
					}
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 0; i < 2000; i++ {
				h.ObserveEx(time.Millisecond, chainID(byte(w+1)), int64(i))
			}
		}(w)
	}
	writeWG.Wait()
	close(stop)
	readWG.Wait()
	if h.Count() != writers*2000 {
		t.Fatalf("count = %d, want %d", h.Count(), writers*2000)
	}
	if _, ok := h.BucketExemplar(bucketOf(time.Millisecond)); !ok {
		t.Fatal("no exemplar survived concurrent stamping")
	}
}

func TestCountOver(t *testing.T) {
	var h Histogram
	objective := 10 * time.Millisecond
	for i := 0; i < 90; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	if got := h.CountOver(objective); got != 10 {
		t.Fatalf("CountOver(%v) = %d, want 10", objective, got)
	}
	// Observations in the objective's own bucket do not count as over:
	// the objective rounds up to its bucket's upper bound.
	h.Observe(objective)
	if got := h.CountOver(objective); got != 10 {
		t.Fatalf("CountOver(%v) after in-bucket observe = %d, want 10", objective, got)
	}
}

func TestExemplarsAbove(t *testing.T) {
	var h Histogram
	h.ArmExemplars()
	objective := 5 * time.Millisecond
	h.ObserveEx(time.Millisecond, chainID(1), 10)     // below objective
	h.ObserveEx(20*time.Millisecond, chainID(2), 20)  // above, old
	h.ObserveEx(80*time.Millisecond, chainID(3), 30)  // above, fresh
	h.ObserveEx(300*time.Millisecond, chainID(4), 40) // above, fresh
	got := h.ExemplarsAbove(objective, 25, 8)
	if len(got) != 2 {
		t.Fatalf("got %d exemplars, want 2 (since filter)", len(got))
	}
	// Highest-latency buckets first.
	if got[0].Chain != chainID(4) || got[1].Chain != chainID(3) {
		t.Fatalf("order = %v,%v, want chains 4,3", got[0].Chain, got[1].Chain)
	}
	if got := h.ExemplarsAbove(objective, 0, 1); len(got) != 1 {
		t.Fatalf("max cap ignored: got %d", len(got))
	}
	if got := h.ExemplarsAbove(time.Second, 0, 8); got != nil {
		t.Fatalf("objective above all data still returned %v", got)
	}
}

func TestRegistryArmExemplars(t *testing.T) {
	r := NewRegistry()
	pre := r.Iface("Pre")
	r.ArmExemplars()
	if !pre.ExemplarsArmed() {
		t.Fatal("existing histogram not armed")
	}
	post := r.Iface("Post")
	if !post.ExemplarsArmed() {
		t.Fatal("histogram created after arming not armed")
	}
	ops := r.Op(OpKey{Interface: "I", Operation: "m"})
	if !ops.StubTime.ExemplarsArmed() || !ops.SkelTime.ExemplarsArmed() {
		t.Fatal("op histograms created after arming not armed")
	}
	r.ObserveChainEx("Post", 7*time.Millisecond, chainID(9), 77)
	e, ok := post.BucketExemplar(bucketOf(7 * time.Millisecond))
	if !ok || e.Chain != chainID(9) {
		t.Fatalf("ObserveChainEx exemplar = %+v ok=%v", e, ok)
	}
}

func TestWriteTextExemplarAnnotations(t *testing.T) {
	r := NewRegistry()
	r.ArmExemplars()
	c := chainID(0xab)
	r.ObserveChainEx("Echo", 25*time.Millisecond, c, 1234)
	var sb strings.Builder
	r.WriteText(&sb)
	out := sb.String()
	want := `chain_uuid="` + c.String() + `"`
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing exemplar annotation %s:\n%s", want, out)
	}
	// Every annotated line still starts with `name{labels} value`.
	for _, line := range strings.Split(out, "\n") {
		if i := strings.Index(line, " # "); i >= 0 {
			head := line[:i]
			if !strings.Contains(head, "} ") {
				t.Fatalf("annotated line lacks value before annotation: %q", line)
			}
			if !strings.HasPrefix(line[i+3:], `{chain_uuid="`) {
				t.Fatalf("annotation shape wrong: %q", line)
			}
		}
	}
}

func TestChainIDString(t *testing.T) {
	c := ChainID{0x0a, 0x1b, 0x2c, 0x3d, 0x4e, 0x5f, 0x60, 0x71, 0x82, 0x93, 0xa4, 0xb5, 0xc6, 0xd7, 0xe8, 0xf9}
	want := "0a1b2c3d-4e5f-6071-8293-a4b5c6d7e8f9"
	if got := c.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// TestExemplarObserveAllocFree pins the armed chain-carrying observe path
// at zero allocations — the probe hot path budget must not move when
// exemplars are on.
func TestExemplarObserveAllocFree(t *testing.T) {
	var h Histogram
	h.ArmExemplars()
	c := chainID(7)
	if a := testing.AllocsPerRun(1000, func() {
		h.ObserveEx(3*time.Millisecond, c, 42)
	}); a != 0 {
		t.Fatalf("armed ObserveEx allocates %v/op, want 0", a)
	}
}

// BenchmarkExemplarOverhead compares the chain-carrying observe path with
// exemplars off and on: stamping the LWW slot must cost a handful of
// atomics, not a measurable regression (bench.sh puts both series in the
// trajectory).
func BenchmarkExemplarOverhead(b *testing.B) {
	c := chainID(5)
	b.Run("off", func(b *testing.B) {
		var h Histogram
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.ObserveEx(3*time.Millisecond, c, int64(i))
		}
	})
	b.Run("on", func(b *testing.B) {
		var h Histogram
		h.ArmExemplars()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.ObserveEx(3*time.Millisecond, c, int64(i))
		}
	})
}
