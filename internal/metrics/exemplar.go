// Exemplars link the aggregate view back to causality: each histogram
// bucket can optionally remember the chain UUID of the most recent
// observation that landed in it. A p99 line in the exposition then names
// an actual causal chain whose DSCG explains the latency — the bridge
// from "the quantile moved" to "this request did it".
//
// The slot is last-write-wins and lock-free. A writer claims the slot by
// CASing the version from even to odd, stores the payload, and publishes
// with version+2; a writer that loses the claim simply drops its sample
// (LWW permits that — some recent observation wins, not necessarily the
// last). Readers snapshot the version, copy the payload, and retry if the
// version moved. All fields are atomics, so the protocol is race-detector
// clean, and the armed write path performs zero allocations — the probe
// hot path keeps its PR 9 budgets.
package metrics

import (
	"encoding/binary"
	"encoding/hex"
	"math"
	"sync/atomic"
	"time"
)

// ChainID is a causal chain identity as the metrics plane sees it: the
// raw 16 bytes of the FTL chain UUID. The package stays a standard-
// library leaf; callers convert from their UUID type (also a [16]byte
// array) for free. The zero ChainID means "no exemplar".
type ChainID [16]byte

// String renders the chain in canonical 8-4-4-4-12 UUID form.
func (c ChainID) String() string {
	var buf [36]byte
	hex.Encode(buf[0:8], c[0:4])
	buf[8] = '-'
	hex.Encode(buf[9:13], c[4:6])
	buf[13] = '-'
	hex.Encode(buf[14:18], c[6:8])
	buf[18] = '-'
	hex.Encode(buf[19:23], c[8:10])
	buf[23] = '-'
	hex.Encode(buf[24:36], c[10:16])
	return string(buf[:])
}

// IsZero reports whether the chain is the "no exemplar" sentinel.
func (c ChainID) IsZero() bool { return c == ChainID{} }

// Exemplar is one remembered observation: which chain produced it, the
// observed duration, and when it was recorded (unix nanoseconds).
type Exemplar struct {
	Chain ChainID
	Value time.Duration
	When  int64
}

// exemplarSlot is one bucket's last-write-wins cell. ver is even when the
// payload is stable, odd while a writer owns it; 0 means never written.
type exemplarSlot struct {
	ver  atomic.Uint64
	hi   atomic.Uint64 // chain bytes 0..7, big endian
	lo   atomic.Uint64 // chain bytes 8..15, big endian
	val  atomic.Int64
	when atomic.Int64
}

// store stamps the slot with a new exemplar. Losing a claim race drops
// the sample — acceptable under LWW, and it keeps the path wait-free.
func (s *exemplarSlot) store(chain ChainID, val, when int64) {
	v := s.ver.Load()
	if v&1 != 0 {
		return // another writer mid-stamp; theirs is at least as recent
	}
	if !s.ver.CompareAndSwap(v, v+1) {
		return
	}
	s.hi.Store(binary.BigEndian.Uint64(chain[0:8]))
	s.lo.Store(binary.BigEndian.Uint64(chain[8:16]))
	s.val.Store(val)
	s.when.Store(when)
	s.ver.Store(v + 2)
}

// load reads a consistent snapshot; ok is false when the slot was never
// written or a writer kept it unstable across every retry.
func (s *exemplarSlot) load() (Exemplar, bool) {
	for attempt := 0; attempt < 8; attempt++ {
		v := s.ver.Load()
		if v == 0 {
			return Exemplar{}, false
		}
		if v&1 != 0 {
			continue
		}
		var e Exemplar
		binary.BigEndian.PutUint64(e.Chain[0:8], s.hi.Load())
		binary.BigEndian.PutUint64(e.Chain[8:16], s.lo.Load())
		e.Value = time.Duration(s.val.Load())
		e.When = s.when.Load()
		if s.ver.Load() == v {
			return e, true
		}
	}
	return Exemplar{}, false
}

// exemplarSet is one slot per histogram bucket, allocated lazily on
// arming so unarmed histograms pay nothing.
type exemplarSet [NumBuckets]exemplarSlot

// ArmExemplars enables exemplar capture on the histogram. Idempotent and
// safe concurrently with observers; until armed, ObserveEx behaves like
// Observe at the cost of one atomic load.
func (h *Histogram) ArmExemplars() {
	if h.ex.Load() == nil {
		h.ex.CompareAndSwap(nil, &exemplarSet{})
	}
}

// ExemplarsArmed reports whether the histogram captures exemplars.
func (h *Histogram) ExemplarsArmed() bool { return h.ex.Load() != nil }

// ObserveEx records one duration and, when exemplars are armed and chain
// is non-zero, stamps the chain as its bucket's exemplar. when is the
// observation's wall timestamp in unix nanoseconds. Never allocates.
func (h *Histogram) ObserveEx(v time.Duration, chain ChainID, when int64) {
	b := bucketOf(v)
	h.counts[b].Add(1)
	h.total.Add(1)
	h.sum.Add(int64(v))
	for {
		cur := h.max.Load()
		if int64(v) <= cur || h.max.CompareAndSwap(cur, int64(v)) {
			break
		}
	}
	if chain.IsZero() {
		return
	}
	if set := h.ex.Load(); set != nil {
		set[b].store(chain, int64(v), when)
	}
}

// BucketExemplar returns bucket i's exemplar, if one was captured.
func (h *Histogram) BucketExemplar(i int) (Exemplar, bool) {
	set := h.ex.Load()
	if set == nil || i < 0 || i >= NumBuckets {
		return Exemplar{}, false
	}
	return set[i].load()
}

// CountOver reports how many observations landed strictly above the
// bucket containing v — the "bad count" an SLO burn-rate evaluator
// divides by Count(). The objective is effectively rounded up to its
// bucket's upper bound, consistent with the digest convention that
// quantiles never under-report.
func (h *Histogram) CountOver(v time.Duration) uint64 {
	var n uint64
	for i := bucketOf(v) + 1; i < NumBuckets; i++ {
		n += h.counts[i].Load()
	}
	return n
}

// ExemplarsAbove collects up to max exemplars from buckets strictly above
// the bucket containing v, newest buckets first (highest latency down),
// keeping only those stamped at or after since (unix nanoseconds). This
// is how an alert gathers the chains that burned the budget while it was
// pending.
func (h *Histogram) ExemplarsAbove(v time.Duration, since int64, max int) []Exemplar {
	set := h.ex.Load()
	if set == nil || max <= 0 {
		return nil
	}
	var out []Exemplar
	for i := NumBuckets - 1; i > bucketOf(v); i-- {
		if h.counts[i].Load() == 0 {
			continue
		}
		e, ok := set[i].load()
		if !ok || e.When < since {
			continue
		}
		out = append(out, e)
		if len(out) >= max {
			break
		}
	}
	return out
}

// quantileBucket returns the bucket index realizing the q-quantile, or
// -1 with no observations; Quantile is BucketValue of this index.
func (h *Histogram) quantileBucket(q float64) int {
	total := h.total.Load()
	if total == 0 {
		return -1
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			return i
		}
	}
	return NumBuckets - 1
}
