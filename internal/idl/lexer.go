// Package idl implements the interface-definition-language front end of
// the monitoring framework's IDL compiler: lexer, parser, AST and semantic
// checks for the CORBA-IDL subset the paper's examples use (modules,
// interfaces with synchronous and oneway operations, in/out/inout
// parameters, raises clauses, structs, exceptions, sequences, and the
// primitive types).
package idl

import (
	"fmt"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota + 1
	TokIdent
	TokKeyword
	TokLBrace // {
	TokRBrace // }
	TokLParen // (
	TokRParen // )
	TokLAngle // <
	TokRAngle // >
	TokSemi   // ;
	TokComma  // ,
	TokColon  // :
)

// Token is one lexical unit with its source position.
type Token struct {
	Kind TokenKind
	Text string
	Line int
	Col  int
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of file"
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// keywords of the supported IDL subset. "unsigned" and "long" compose into
// multi-word types in the parser.
var keywords = map[string]bool{
	"module": true, "interface": true, "struct": true, "exception": true,
	"enum":   true,
	"oneway": true, "raises": true, "in": true, "out": true, "inout": true,
	"void": true, "boolean": true, "octet": true, "short": true,
	"long": true, "unsigned": true, "float": true, "double": true,
	"string": true, "sequence": true,
}

// SyntaxError reports a lexical or parse failure with position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("idl:%d:%d: %s", e.Line, e.Col, e.Msg)
}

// Lex tokenizes src, stripping // and /* */ comments.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	advance := func(n int) {
		for j := 0; j < n; j++ {
			if src[i+j] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += n
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				advance(1)
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			startLine, startCol := line, col
			advance(2)
			closed := false
			for i+1 < len(src) {
				if src[i] == '*' && src[i+1] == '/' {
					advance(2)
					closed = true
					break
				}
				advance(1)
			}
			if !closed {
				return nil, &SyntaxError{Line: startLine, Col: startCol, Msg: "unterminated block comment"}
			}
		case isIdentStart(rune(c)):
			startLine, startCol := line, col
			j := i
			for j < len(src) && isIdentPart(rune(src[j])) {
				j++
			}
			text := src[i:j]
			advance(j - i)
			kind := TokIdent
			if keywords[text] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: text, Line: startLine, Col: startCol})
		default:
			kind, ok := punct(c)
			if !ok {
				return nil, &SyntaxError{Line: line, Col: col, Msg: fmt.Sprintf("unexpected character %q", c)}
			}
			toks = append(toks, Token{Kind: kind, Text: string(c), Line: line, Col: col})
			advance(1)
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line, Col: col})
	return toks, nil
}

func punct(c byte) (TokenKind, bool) {
	switch c {
	case '{':
		return TokLBrace, true
	case '}':
		return TokRBrace, true
	case '(':
		return TokLParen, true
	case ')':
		return TokRParen, true
	case '<':
		return TokLAngle, true
	case '>':
		return TokRAngle, true
	case ';':
		return TokSemi, true
	case ',':
		return TokComma, true
	case ':':
		return TokColon, true
	default:
		return 0, false
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
