package idl

import "fmt"

// TypeKind classifies IDL types.
type TypeKind int

// Type kinds.
const (
	TVoid TypeKind = iota + 1
	TBoolean
	TOctet
	TShort
	TUShort
	TLong
	TULong
	TLongLong
	TFloat
	TDouble
	TString
	TSequence // Elem holds the element type
	TNamed    // Name refers to a struct
)

// Type is an IDL type expression.
type Type struct {
	Kind TypeKind
	Elem *Type  // for TSequence
	Name string // for TNamed
}

// String renders the IDL spelling of the type.
func (t *Type) String() string {
	switch t.Kind {
	case TVoid:
		return "void"
	case TBoolean:
		return "boolean"
	case TOctet:
		return "octet"
	case TShort:
		return "short"
	case TUShort:
		return "unsigned short"
	case TLong:
		return "long"
	case TULong:
		return "unsigned long"
	case TLongLong:
		return "long long"
	case TFloat:
		return "float"
	case TDouble:
		return "double"
	case TString:
		return "string"
	case TSequence:
		return fmt.Sprintf("sequence<%s>", t.Elem)
	case TNamed:
		return t.Name
	default:
		return fmt.Sprintf("type(%d)", int(t.Kind))
	}
}

// ParamDir is a parameter passing direction.
type ParamDir int

// Parameter directions.
const (
	DirIn ParamDir = iota + 1
	DirOut
	DirInOut
)

// String renders the IDL direction keyword.
func (d ParamDir) String() string {
	switch d {
	case DirIn:
		return "in"
	case DirOut:
		return "out"
	case DirInOut:
		return "inout"
	default:
		return fmt.Sprintf("dir(%d)", int(d))
	}
}

// Param is one operation parameter.
type Param struct {
	Dir  ParamDir
	Type *Type
	Name string
}

// Operation is one interface method.
type Operation struct {
	Name   string
	Oneway bool
	Ret    *Type
	Params []Param
	Raises []string // exception names
	Line   int
}

// Member is one struct or exception field.
type Member struct {
	Type *Type
	Name string
}

// Interface is one IDL interface.
type Interface struct {
	Name string
	Ops  []Operation
	Line int
}

// Struct is one IDL struct.
type Struct struct {
	Name    string
	Members []Member
	Line    int
}

// Exception is one IDL exception.
type Exception struct {
	Name    string
	Members []Member
	Line    int
}

// Enum is one IDL enumeration.
type Enum struct {
	Name    string
	Members []string
	Line    int
}

// Module is a named scope. The generator flattens modules into Go name
// prefixes when they nest.
type Module struct {
	Name       string
	Interfaces []Interface
	Structs    []Struct
	Exceptions []Exception
	Enums      []Enum
	Modules    []Module
	Line       int
}

// Spec is a parsed IDL compilation unit: declarations at file scope plus
// any modules.
type Spec struct {
	Module // anonymous file-scope "module"
}
