package idl

import (
	"strings"
	"testing"
)

const sampleIDL = `
// Printing pipeline interfaces (Figure 3 style).
module Example {
    struct JobInfo {
        long id;
        string name;
        sequence<octet> payload;
    };

    exception PrinterJam {
        string location;
    };

    interface Foo {
        void funcA(in long x);
        string funcB(in float y);
        long long big(in unsigned long a, in unsigned short b, inout double d, out boolean ok);
        JobInfo submit(in JobInfo job, in sequence<long> pages) raises (PrinterJam);
        oneway void poke(in string msg);
    };
};
`

func TestParseSample(t *testing.T) {
	spec, err := Parse(sampleIDL)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Modules) != 1 || spec.Modules[0].Name != "Example" {
		t.Fatalf("modules = %+v", spec.Modules)
	}
	m := spec.Modules[0]
	if len(m.Interfaces) != 1 || m.Interfaces[0].Name != "Foo" {
		t.Fatalf("interfaces = %+v", m.Interfaces)
	}
	ops := m.Interfaces[0].Ops
	if len(ops) != 5 {
		t.Fatalf("ops = %d", len(ops))
	}
	if ops[0].Name != "funcA" || ops[0].Ret.Kind != TVoid || len(ops[0].Params) != 1 {
		t.Fatalf("funcA = %+v", ops[0])
	}
	if ops[2].Params[2].Dir != DirInOut || ops[2].Params[3].Dir != DirOut {
		t.Fatalf("big params = %+v", ops[2].Params)
	}
	if ops[2].Ret.Kind != TLongLong {
		t.Fatalf("big ret = %v", ops[2].Ret)
	}
	if len(ops[3].Raises) != 1 || ops[3].Raises[0] != "PrinterJam" {
		t.Fatalf("raises = %v", ops[3].Raises)
	}
	if !ops[4].Oneway {
		t.Fatal("poke not oneway")
	}
	if m.Structs[0].Members[2].Type.Kind != TSequence || m.Structs[0].Members[2].Type.Elem.Kind != TOctet {
		t.Fatalf("payload type = %v", m.Structs[0].Members[2].Type)
	}
}

func TestCheckSample(t *testing.T) {
	spec, err := Parse(sampleIDL)
	if err != nil {
		t.Fatal(err)
	}
	sym, err := Check(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sym.Structs["JobInfo"]; !ok {
		t.Fatal("JobInfo not collected")
	}
	if _, ok := sym.Exceptions["PrinterJam"]; !ok {
		t.Fatal("PrinterJam not collected")
	}
	if len(sym.Interfaces) != 1 {
		t.Fatalf("interfaces = %d", len(sym.Interfaces))
	}
}

func TestTypeStrings(t *testing.T) {
	spec, err := Parse(sampleIDL)
	if err != nil {
		t.Fatal(err)
	}
	ty := spec.Modules[0].Structs[0].Members[2].Type
	if got := ty.String(); got != "sequence<octet>" {
		t.Fatalf("String = %q", got)
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("interface /* block\ncomment */ Foo // line\n{}")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 5 { // interface Foo { } EOF
		t.Fatalf("tokens = %v", toks)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("interface Foo { @ }"); err == nil {
		t.Fatal("bad character accepted")
	}
	if _, err := Lex("/* never closed"); err == nil {
		t.Fatal("unterminated comment accepted")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{"interface {", "identifier"},
		{"interface Foo { void f(in long); }", "identifier"},
		{"interface Foo { void f(long x); }", "direction"},
		{"interface Foo { void f() ", "';'"},
		{"module M { interface I {} ", "end of file"},
		{"interface Foo { void f(in void v); }", "void"},
		{"interface Foo { unsigned float f(); }", "unsigned"},
		{"struct S { long }", "identifier"},
		{"}", "unexpected"},
		{"banana", "declaration"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error %q does not mention %q", c.src, err, c.wantSub)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{"interface I { void f(in Nope x); }", "unknown type"},
		{"interface I { oneway long f(); }", "must return void"},
		{"interface I { oneway void f(out long x); }", "must be 'in'"},
		{"exception E { string m; }; interface I { oneway void f() raises (E); }", "cannot raise"},
		{"interface I { void f() raises (Ghost); }", "unknown exception"},
		{"interface I { void f(); void f(); }", "duplicate operation"},
		{"interface I { void f(in long x, in long x); }", "duplicate parameter"},
		{"struct S { long a; }; struct S { long b; };", "duplicate type"},
		{"struct S { long a; }; exception S { long b; };", "duplicate type"},
		{"interface I {}; interface I {};", "duplicate interface"},
		{"exception E { string m; }; struct S { E e; };", "cannot be used as a data type"},
		{"module A { struct S { long x; }; }; module B { struct S { long y; }; };", "duplicate type"},
	}
	for _, c := range cases {
		spec, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		_, err = Check(spec)
		if err == nil {
			t.Errorf("Check(%q) succeeded", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Check(%q) error %q does not mention %q", c.src, err, c.wantSub)
		}
	}
}

func TestNestedModulesPrefix(t *testing.T) {
	spec, err := Parse("module A { module B { struct S { long x; }; interface I { void f(); }; }; };")
	if err != nil {
		t.Fatal(err)
	}
	sym, err := Check(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := sym.Structs["S"]
	if got := sym.Prefix[st]; got != "A_B_" {
		t.Fatalf("struct prefix = %q", got)
	}
	if got := sym.Prefix[sym.Interfaces[0]]; got != "A_B_" {
		t.Fatalf("interface prefix = %q", got)
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Parse("interface Foo {\n  void f(bogus long x);\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Line != 2 {
		t.Fatalf("error line = %d, want 2", se.Line)
	}
}

func TestParseEnum(t *testing.T) {
	spec, err := Parse("enum Color { RED, GREEN, BLUE }; interface I { Color get(in Color c); };")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Enums) != 1 || spec.Enums[0].Name != "Color" || len(spec.Enums[0].Members) != 3 {
		t.Fatalf("enums = %+v", spec.Enums)
	}
	sym, err := Check(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sym.Enums["Color"]; !ok {
		t.Fatal("enum not collected")
	}
}

func TestEnumErrors(t *testing.T) {
	cases := []struct{ src, wantSub string }{
		{"enum E { A, A };", "duplicate member"},
		{"enum E { A }; enum E { B };", "duplicate type"},
		{"enum E { A }; struct E { long x; };", "duplicate type"},
		{"enum E {};", "identifier"},
	}
	for _, c := range cases {
		spec, err := Parse(c.src)
		if err == nil {
			_, err = Check(spec)
		}
		if err == nil {
			t.Errorf("%q accepted", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%q: error %q does not mention %q", c.src, err, c.wantSub)
		}
	}
}
