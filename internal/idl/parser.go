package idl

import "fmt"

// Parse lexes and parses an IDL compilation unit.
func Parse(src string) (*Spec, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	spec := &Spec{}
	if err := p.parseModuleBody(&spec.Module, true); err != nil {
		return nil, err
	}
	return spec, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(t Token, format string, args ...any) error {
	return &SyntaxError{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(kind TokenKind, what string) (Token, error) {
	t := p.next()
	if t.Kind != kind {
		return t, p.errf(t, "expected %s, found %s", what, t)
	}
	return t, nil
}

func (p *parser) expectKeyword(kw string) (Token, error) {
	t := p.next()
	if t.Kind != TokKeyword || t.Text != kw {
		return t, p.errf(t, "expected %q, found %s", kw, t)
	}
	return t, nil
}

func (p *parser) expectIdent() (Token, error) {
	t := p.next()
	if t.Kind != TokIdent {
		return t, p.errf(t, "expected identifier, found %s", t)
	}
	return t, nil
}

// parseModuleBody parses declarations until '}' (or EOF at top level).
func (p *parser) parseModuleBody(m *Module, topLevel bool) error {
	for {
		t := p.cur()
		switch {
		case t.Kind == TokEOF:
			if !topLevel {
				return p.errf(t, "unexpected end of file inside module %q", m.Name)
			}
			return nil
		case t.Kind == TokRBrace:
			if topLevel {
				return p.errf(t, "unexpected %s at file scope", t)
			}
			return nil
		case t.Kind == TokKeyword && t.Text == "module":
			sub, err := p.parseModule()
			if err != nil {
				return err
			}
			m.Modules = append(m.Modules, *sub)
		case t.Kind == TokKeyword && t.Text == "interface":
			iface, err := p.parseInterface()
			if err != nil {
				return err
			}
			m.Interfaces = append(m.Interfaces, *iface)
		case t.Kind == TokKeyword && t.Text == "struct":
			st, err := p.parseStruct()
			if err != nil {
				return err
			}
			m.Structs = append(m.Structs, *st)
		case t.Kind == TokKeyword && t.Text == "exception":
			ex, err := p.parseException()
			if err != nil {
				return err
			}
			m.Exceptions = append(m.Exceptions, *ex)
		case t.Kind == TokKeyword && t.Text == "enum":
			en, err := p.parseEnum()
			if err != nil {
				return err
			}
			m.Enums = append(m.Enums, *en)
		default:
			return p.errf(t, "expected declaration, found %s", t)
		}
	}
}

func (p *parser) parseModule() (*Module, error) {
	kw, err := p.expectKeyword("module")
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace, "'{'"); err != nil {
		return nil, err
	}
	m := &Module{Name: name.Text, Line: kw.Line}
	if err := p.parseModuleBody(m, false); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRBrace, "'}'"); err != nil {
		return nil, err
	}
	p.optionalSemi()
	return m, nil
}

func (p *parser) optionalSemi() {
	if p.cur().Kind == TokSemi {
		p.pos++
	}
}

func (p *parser) parseInterface() (*Interface, error) {
	kw, err := p.expectKeyword("interface")
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace, "'{'"); err != nil {
		return nil, err
	}
	iface := &Interface{Name: name.Text, Line: kw.Line}
	for p.cur().Kind != TokRBrace {
		op, err := p.parseOperation()
		if err != nil {
			return nil, err
		}
		iface.Ops = append(iface.Ops, *op)
	}
	p.pos++ // consume '}'
	p.optionalSemi()
	return iface, nil
}

func (p *parser) parseOperation() (*Operation, error) {
	op := &Operation{Line: p.cur().Line}
	if p.cur().Kind == TokKeyword && p.cur().Text == "oneway" {
		op.Oneway = true
		p.pos++
	}
	ret, err := p.parseType(true)
	if err != nil {
		return nil, err
	}
	op.Ret = ret
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	op.Name = name.Text
	if _, err := p.expect(TokLParen, "'('"); err != nil {
		return nil, err
	}
	for p.cur().Kind != TokRParen {
		if len(op.Params) > 0 {
			if _, err := p.expect(TokComma, "','"); err != nil {
				return nil, err
			}
		}
		param, err := p.parseParam()
		if err != nil {
			return nil, err
		}
		op.Params = append(op.Params, *param)
	}
	p.pos++ // consume ')'
	if p.cur().Kind == TokKeyword && p.cur().Text == "raises" {
		p.pos++
		if _, err := p.expect(TokLParen, "'('"); err != nil {
			return nil, err
		}
		for {
			ex, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			op.Raises = append(op.Raises, ex.Text)
			if p.cur().Kind != TokComma {
				break
			}
			p.pos++
		}
		if _, err := p.expect(TokRParen, "')'"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokSemi, "';'"); err != nil {
		return nil, err
	}
	return op, nil
}

func (p *parser) parseParam() (*Param, error) {
	t := p.next()
	var dir ParamDir
	switch {
	case t.Kind == TokKeyword && t.Text == "in":
		dir = DirIn
	case t.Kind == TokKeyword && t.Text == "out":
		dir = DirOut
	case t.Kind == TokKeyword && t.Text == "inout":
		dir = DirInOut
	default:
		return nil, p.errf(t, "expected parameter direction (in/out/inout), found %s", t)
	}
	ty, err := p.parseType(false)
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &Param{Dir: dir, Type: ty, Name: name.Text}, nil
}

func (p *parser) parseStruct() (*Struct, error) {
	kw, err := p.expectKeyword("struct")
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	members, err := p.parseMemberBlock()
	if err != nil {
		return nil, err
	}
	return &Struct{Name: name.Text, Members: members, Line: kw.Line}, nil
}

func (p *parser) parseException() (*Exception, error) {
	kw, err := p.expectKeyword("exception")
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	members, err := p.parseMemberBlock()
	if err != nil {
		return nil, err
	}
	return &Exception{Name: name.Text, Members: members, Line: kw.Line}, nil
}

func (p *parser) parseEnum() (*Enum, error) {
	kw, err := p.expectKeyword("enum")
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace, "'{'"); err != nil {
		return nil, err
	}
	en := &Enum{Name: name.Text, Line: kw.Line}
	for {
		member, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		en.Members = append(en.Members, member.Text)
		if p.cur().Kind != TokComma {
			break
		}
		p.pos++
	}
	if _, err := p.expect(TokRBrace, "'}'"); err != nil {
		return nil, err
	}
	p.optionalSemi()
	return en, nil
}

func (p *parser) parseMemberBlock() ([]Member, error) {
	if _, err := p.expect(TokLBrace, "'{'"); err != nil {
		return nil, err
	}
	var members []Member
	for p.cur().Kind != TokRBrace {
		ty, err := p.parseType(false)
		if err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi, "';'"); err != nil {
			return nil, err
		}
		members = append(members, Member{Type: ty, Name: name.Text})
	}
	p.pos++ // consume '}'
	p.optionalSemi()
	return members, nil
}

// parseType parses a type expression; void is accepted only when allowVoid.
func (p *parser) parseType(allowVoid bool) (*Type, error) {
	t := p.next()
	if t.Kind == TokIdent {
		return &Type{Kind: TNamed, Name: t.Text}, nil
	}
	if t.Kind != TokKeyword {
		return nil, p.errf(t, "expected type, found %s", t)
	}
	switch t.Text {
	case "void":
		if !allowVoid {
			return nil, p.errf(t, "void is only valid as a return type")
		}
		return &Type{Kind: TVoid}, nil
	case "boolean":
		return &Type{Kind: TBoolean}, nil
	case "octet":
		return &Type{Kind: TOctet}, nil
	case "short":
		return &Type{Kind: TShort}, nil
	case "float":
		return &Type{Kind: TFloat}, nil
	case "double":
		return &Type{Kind: TDouble}, nil
	case "string":
		return &Type{Kind: TString}, nil
	case "long":
		if p.cur().Kind == TokKeyword && p.cur().Text == "long" {
			p.pos++
			return &Type{Kind: TLongLong}, nil
		}
		return &Type{Kind: TLong}, nil
	case "unsigned":
		u := p.next()
		if u.Kind != TokKeyword {
			return nil, p.errf(u, "expected short or long after unsigned")
		}
		switch u.Text {
		case "short":
			return &Type{Kind: TUShort}, nil
		case "long":
			return &Type{Kind: TULong}, nil
		default:
			return nil, p.errf(u, "expected short or long after unsigned, found %q", u.Text)
		}
	case "sequence":
		if _, err := p.expect(TokLAngle, "'<'"); err != nil {
			return nil, err
		}
		elem, err := p.parseType(false)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRAngle, "'>'"); err != nil {
			return nil, err
		}
		return &Type{Kind: TSequence, Elem: elem}, nil
	default:
		return nil, p.errf(t, "expected type, found %s", t)
	}
}
