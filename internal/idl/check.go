package idl

import "fmt"

// SemanticError reports a semantic violation found during Check.
type SemanticError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *SemanticError) Error() string {
	return fmt.Sprintf("idl:%d: %s", e.Line, e.Msg)
}

// Symbols is the flattened symbol table of a checked spec: structs and
// exceptions by their qualified (module-prefixed) names; the generator
// consumes it.
type Symbols struct {
	Structs    map[string]*Struct
	Exceptions map[string]*Exception
	Enums      map[string]*Enum
	Interfaces []*Interface
	// Prefix maps each declaration to the module path prefix it was
	// declared under (for Go name mangling of nested modules).
	Prefix map[any]string
}

// Check validates a parsed spec: unique names, resolvable named types,
// oneway restrictions (void return, in-params only, no raises), resolvable
// raises clauses. It returns the symbol table on success.
func Check(spec *Spec) (*Symbols, error) {
	sym := &Symbols{
		Structs:    make(map[string]*Struct),
		Exceptions: make(map[string]*Exception),
		Enums:      make(map[string]*Enum),
		Prefix:     make(map[any]string),
	}
	if err := collect(&spec.Module, "", sym); err != nil {
		return nil, err
	}
	// Resolve types and enforce operation rules.
	for _, iface := range sym.Interfaces {
		names := map[string]bool{}
		for i := range iface.Ops {
			op := &iface.Ops[i]
			if names[op.Name] {
				return nil, &SemanticError{Line: op.Line, Msg: fmt.Sprintf("interface %s: duplicate operation %q (IDL has no overloading)", iface.Name, op.Name)}
			}
			names[op.Name] = true
			if err := resolveType(op.Ret, op.Line, sym); err != nil {
				return nil, err
			}
			pnames := map[string]bool{}
			for _, prm := range op.Params {
				if pnames[prm.Name] {
					return nil, &SemanticError{Line: op.Line, Msg: fmt.Sprintf("operation %s: duplicate parameter %q", op.Name, prm.Name)}
				}
				pnames[prm.Name] = true
				if err := resolveType(prm.Type, op.Line, sym); err != nil {
					return nil, err
				}
			}
			if op.Oneway {
				if op.Ret.Kind != TVoid {
					return nil, &SemanticError{Line: op.Line, Msg: fmt.Sprintf("oneway operation %s must return void", op.Name)}
				}
				for _, prm := range op.Params {
					if prm.Dir != DirIn {
						return nil, &SemanticError{Line: op.Line, Msg: fmt.Sprintf("oneway operation %s: parameter %q must be 'in'", op.Name, prm.Name)}
					}
				}
				if len(op.Raises) > 0 {
					return nil, &SemanticError{Line: op.Line, Msg: fmt.Sprintf("oneway operation %s cannot raise exceptions", op.Name)}
				}
			}
			for _, ex := range op.Raises {
				if _, ok := sym.Exceptions[ex]; !ok {
					return nil, &SemanticError{Line: op.Line, Msg: fmt.Sprintf("operation %s raises unknown exception %q", op.Name, ex)}
				}
			}
		}
	}
	// Resolve struct and exception member types (including struct-in-struct).
	for _, st := range sym.Structs {
		for _, m := range st.Members {
			if err := resolveType(m.Type, st.Line, sym); err != nil {
				return nil, err
			}
		}
	}
	for _, ex := range sym.Exceptions {
		for _, m := range ex.Members {
			if err := resolveType(m.Type, ex.Line, sym); err != nil {
				return nil, err
			}
		}
	}
	return sym, nil
}

func collect(m *Module, prefix string, sym *Symbols) error {
	for i := range m.Structs {
		st := &m.Structs[i]
		if err := declare(sym, st.Name, st.Line); err != nil {
			return err
		}
		sym.Structs[st.Name] = st
		sym.Prefix[st] = prefix
	}
	for i := range m.Exceptions {
		ex := &m.Exceptions[i]
		if err := declare(sym, ex.Name, ex.Line); err != nil {
			return err
		}
		sym.Exceptions[ex.Name] = ex
		sym.Prefix[ex] = prefix
	}
	for i := range m.Enums {
		en := &m.Enums[i]
		if err := declare(sym, en.Name, en.Line); err != nil {
			return err
		}
		if len(en.Members) == 0 {
			return &SemanticError{Line: en.Line, Msg: fmt.Sprintf("enum %q has no members", en.Name)}
		}
		seen := map[string]bool{}
		for _, mb := range en.Members {
			if seen[mb] {
				return &SemanticError{Line: en.Line, Msg: fmt.Sprintf("enum %q: duplicate member %q", en.Name, mb)}
			}
			seen[mb] = true
		}
		sym.Enums[en.Name] = en
		sym.Prefix[en] = prefix
	}
	for i := range m.Interfaces {
		iface := &m.Interfaces[i]
		for _, seen := range sym.Interfaces {
			if seen.Name == iface.Name {
				return &SemanticError{Line: iface.Line, Msg: fmt.Sprintf("duplicate interface %q", iface.Name)}
			}
		}
		if err := declare(sym, iface.Name, iface.Line); err != nil {
			return err
		}
		sym.Interfaces = append(sym.Interfaces, iface)
		sym.Prefix[iface] = prefix
	}
	for i := range m.Modules {
		sub := &m.Modules[i]
		subPrefix := prefix + sub.Name + "_"
		if err := collect(sub, subPrefix, sym); err != nil {
			return err
		}
	}
	return nil
}

// declare enforces a single flat namespace for type names: the Go mapping
// flattens modules, so cross-module collisions must be rejected here.
func declare(sym *Symbols, name string, line int) error {
	if _, dup := sym.Structs[name]; dup {
		return &SemanticError{Line: line, Msg: fmt.Sprintf("duplicate type name %q", name)}
	}
	if _, dup := sym.Exceptions[name]; dup {
		return &SemanticError{Line: line, Msg: fmt.Sprintf("duplicate type name %q", name)}
	}
	if _, dup := sym.Enums[name]; dup {
		return &SemanticError{Line: line, Msg: fmt.Sprintf("duplicate type name %q", name)}
	}
	return nil
}

func resolveType(t *Type, line int, sym *Symbols) error {
	switch t.Kind {
	case TSequence:
		return resolveType(t.Elem, line, sym)
	case TNamed:
		if _, ok := sym.Structs[t.Name]; ok {
			return nil
		}
		if _, ok := sym.Enums[t.Name]; ok {
			return nil
		}
		if _, isEx := sym.Exceptions[t.Name]; isEx {
			return &SemanticError{Line: line, Msg: fmt.Sprintf("exception %q cannot be used as a data type", t.Name)}
		}
		return &SemanticError{Line: line, Msg: fmt.Sprintf("unknown type %q", t.Name)}
	default:
		return nil
	}
}
