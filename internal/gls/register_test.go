package gls

import (
	"runtime"
	"sync"
	"testing"
)

// TestFastPathValidates pins that the getg primitive self-validates on the
// platforms we build the assembly for; everywhere else the fallback must
// keep Self correct.
func TestFastPathValidates(t *testing.T) {
	if getgAvailable && (runtime.GOARCH == "amd64" || runtime.GOARCH == "arm64") {
		if !FastPathEnabled() {
			t.Fatalf("getg fast path failed validation on %s", runtime.GOARCH)
		}
	}
	if !getgAvailable && FastPathEnabled() {
		t.Fatal("fast path enabled without a getg primitive")
	}
}

// TestRegisterSelfAgrees checks that the registered fast path and the stack
// parse resolve the same identity.
func TestRegisterSelfAgrees(t *testing.T) {
	g := Register()
	defer Unregister()
	if !FastPathEnabled() {
		t.Skip("fast path unavailable on this platform")
	}
	if !Registered() {
		t.Fatal("Registered() false after Register")
	}
	if got := Self(); got != g {
		t.Fatalf("registered Self = %d, Register returned %d", got, g)
	}
	if parsed := G(GoroutineID()); parsed != g {
		t.Fatalf("stack parse = %d, registered handle %d", parsed, g)
	}
}

func TestUnregisterRestoresParse(t *testing.T) {
	g := Register()
	Unregister()
	if Registered() {
		t.Fatal("Registered() true after Unregister")
	}
	if got := Self(); got != g {
		t.Fatalf("post-unregister Self = %d, want %d (same goroutine)", got, g)
	}
}

// TestRegisterChurn races 96 goroutines — half registered, half not, with
// registration churn (register/unregister cycles mid-flight) — and checks
// every Self observation on a goroutine matches its own parsed gid. Run
// under -race this also proves the registry sharding is sound, and the
// goroutine churn exercises g-struct reuse: a recycled g must never inherit
// the previous owner's identity.
func TestRegisterChurn(t *testing.T) {
	const (
		goroutines = 96
		rounds     = 50
	)
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := G(GoroutineID())
			registered := i%2 == 0
			if registered {
				if got := Register(); got != want {
					errs <- "Register disagrees with parse"
					return
				}
				defer Unregister()
			}
			for r := 0; r < rounds; r++ {
				if got := Self(); got != want {
					errs <- "Self disagrees with own gid"
					return
				}
				if registered && r%10 == 5 {
					// churn: drop and re-acquire the registration
					Unregister()
					if got := Self(); got != want {
						errs <- "unregistered Self disagrees"
						return
					}
					Register()
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	// After the storm every registration must be gone (no leaks into
	// recycled g structs).
	total := 0
	for i := range regTable {
		regTable[i].mu.RLock()
		total += len(regTable[i].m)
		regTable[i].mu.RUnlock()
	}
	if total != 0 {
		t.Fatalf("%d stale registrations after churn", total)
	}
}

// TestRegisterFresh pins the synthetic-identity contract: ids live in the
// high namespace runtime gids can never reach, are unique per registration,
// resolve through Self on the registering goroutine, and never parse.
func TestRegisterFresh(t *testing.T) {
	if !FastPathEnabled() {
		// Degraded mode: RegisterFresh must behave exactly like Register.
		g := RegisterFresh()
		defer Unregister()
		if got := Self(); got != g {
			t.Fatalf("degraded RegisterFresh Self = %d, want %d", got, g)
		}
		return
	}
	const workers = 16
	ids := make([]G, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := RegisterFresh()
			defer Unregister()
			ids[i] = g
			if uint64(g)&syntheticBase == 0 {
				errsafe(t, "synthetic id missing namespace bit")
			}
			if got := Self(); got != g {
				errsafe(t, "Self disagrees with RegisterFresh handle")
			}
		}(i)
	}
	wg.Wait()
	seen := make(map[G]bool, workers)
	for _, g := range ids {
		if seen[g] {
			t.Fatalf("duplicate synthetic id %d", uint64(g))
		}
		seen[g] = true
	}
}

func errsafe(t *testing.T, msg string) {
	t.Helper()
	t.Error(msg)
}

// TestStackBufClampOnPut pins the cdr-pool-style clamp: oversized scratch
// buffers must not be returned to the pool.
func TestStackBufClampOnPut(t *testing.T) {
	big := make([]byte, stackBufCap*2)
	putStackBuf(&big)
	// Drain up to a generous number of pooled buffers; none may exceed the
	// clamp. (The pool may also hand back fresh buffers — fine, those are
	// stackBufMin-sized.)
	for i := 0; i < 64; i++ {
		bp := stackBufPool.Get().(*[]byte)
		if cap(*bp) > stackBufCap {
			t.Fatalf("pool retained %d-byte buffer beyond clamp %d", cap(*bp), stackBufCap)
		}
		defer putStackBuf(bp)
	}
	ok := make([]byte, stackBufCap)
	putStackBuf(&ok) // at-clamp buffers are kept
}

// TestGoroutineIDGrowth proves the parse retries with a doubled buffer when
// the header cannot be proven complete.
func TestGoroutineIDGrowth(t *testing.T) {
	tiny := make([]byte, 4) // smaller than "goroutine " — parse must fail
	if _, ok := parseGID(tiny); ok {
		t.Fatal("parse claimed success with a 4-byte buffer")
	}
	want := GoroutineID()
	// The public path must still resolve correctly even if the pool is
	// seeded with a too-small buffer.
	small := make([]byte, 12)
	stackBufPool.Put(&small)
	for i := 0; i < 8; i++ { // several resolves to likely hit the seeded buf
		if got := GoroutineID(); got != want {
			t.Fatalf("GoroutineID = %d, want %d", got, want)
		}
	}
}

func BenchmarkSelfRegistered(b *testing.B) {
	Register()
	defer Unregister()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkG = Self()
	}
}

func BenchmarkSelfUnregistered(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkG = Self()
	}
}

var sinkG G

// TestRegisteredSelfAllocFree pins the fast path at zero allocations.
func TestRegisteredSelfAllocFree(t *testing.T) {
	if !FastPathEnabled() {
		t.Skip("fast path unavailable")
	}
	Register()
	defer Unregister()
	allocs := testing.AllocsPerRun(200, func() { sinkG = Self() })
	if allocs != 0 {
		t.Fatalf("registered Self allocates %.1f/op, want 0", allocs)
	}
}
