package gls

import (
	"sync"
	"testing"
)

func TestGoroutineIDStableAndDistinct(t *testing.T) {
	id1 := GoroutineID()
	id2 := GoroutineID()
	if id1 == 0 {
		t.Fatal("GoroutineID returned 0")
	}
	if id1 != id2 {
		t.Fatalf("unstable id on same goroutine: %d then %d", id1, id2)
	}
	ch := make(chan uint64)
	go func() { ch <- GoroutineID() }()
	other := <-ch
	if other == id1 {
		t.Fatal("two goroutines share an id")
	}
}

func TestSetGetClear(t *testing.T) {
	s := NewStore[string]()
	if _, ok := s.Get(); ok {
		t.Fatal("fresh store has a value")
	}
	s.Set("hello")
	v, ok := s.Get()
	if !ok || v != "hello" {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	s.Clear()
	if _, ok := s.Get(); ok {
		t.Fatal("value survived Clear")
	}
}

func TestIsolationBetweenGoroutines(t *testing.T) {
	s := NewStore[int]()
	const n = 32
	var wg sync.WaitGroup
	errs := make(chan string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			s.Set(me)
			for j := 0; j < 100; j++ {
				v, ok := s.Get()
				if !ok || v != me {
					errs <- "goroutine saw foreign value"
					return
				}
			}
			s.Clear()
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if got := s.Len(); got != 0 {
		t.Fatalf("Len after all cleared = %d, want 0", got)
	}
}

func TestSwapSaveRestore(t *testing.T) {
	s := NewStore[string]()
	s.Set("outer")
	prev, had := s.Swap("inner")
	if !had || prev != "outer" {
		t.Fatalf("Swap returned %v, %v", prev, had)
	}
	if v, _ := s.Get(); v != "inner" {
		t.Fatalf("after swap Get = %v", v)
	}
	// Restore, as an STA loop would around dispatch.
	s.Set(prev)
	if v, _ := s.Get(); v != "outer" {
		t.Fatalf("after restore Get = %v", v)
	}
	s.Clear()
}

func TestSwapOnEmpty(t *testing.T) {
	s := NewStore[int]()
	prev, had := s.Swap(1)
	if had || prev != 0 {
		t.Fatalf("Swap on empty = %v, %v", prev, had)
	}
	s.Clear()
}

func TestExplicitGidOps(t *testing.T) {
	s := NewStore[string]()
	s.SetG(12345, "x")
	if v, ok := s.GetG(12345); !ok || v != "x" {
		t.Fatalf("GetG = %v, %v", v, ok)
	}
	if _, ok := s.Get(); ok {
		t.Fatal("calling goroutine should have no value")
	}
	s.ClearG(12345)
	if s.Len() != 0 {
		t.Fatal("ClearG left residue")
	}
}

func TestSelfMatchesGoroutineID(t *testing.T) {
	if Self().ID() != GoroutineID() {
		t.Fatal("Self handle disagrees with GoroutineID")
	}
	ch := make(chan G)
	go func() { ch <- Self() }()
	if other := <-ch; other == Self() {
		t.Fatal("two goroutines resolved the same Self handle")
	}
}

// TestGidReuseAfterClear models goroutine churn: the runtime may hand a new
// goroutine the id of a dead one, so a store slot cleared on dispatch exit
// must never leak into the id's next owner.
func TestGidReuseAfterClear(t *testing.T) {
	s := NewStore[string]()
	const rounds = 200
	for i := 0; i < rounds; i++ {
		done := make(chan uint64, 1)
		go func() {
			self := Self()
			if v, ok := s.GetG(self.ID()); ok {
				t.Errorf("fresh goroutine %d inherited stale value %q", self.ID(), v)
			}
			s.SetG(self.ID(), "scoped")
			s.ClearG(self.ID())
			done <- self.ID()
		}()
		<-done
	}
	if got := s.Len(); got != 0 {
		t.Fatalf("Len after churn = %d, want 0", got)
	}
}

// TestConcurrentSelfHandles runs many goroutines (more than shardCount) each
// resolving a Self handle once and reusing it across every store operation —
// the per-dispatch probe pattern — under the race detector.
func TestConcurrentSelfHandles(t *testing.T) {
	s := NewStore[int]()
	const n = 96 // > shardCount, so shards are shared and contended
	var wg sync.WaitGroup
	errs := make(chan string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			self := Self()
			gid := self.ID()
			for j := 0; j < 50; j++ {
				s.SetG(gid, me)
				if v, ok := s.GetG(gid); !ok || v != me {
					errs <- "handle-keyed Get saw foreign value"
					return
				}
				if prev, had := s.SwapG(gid, me); !had || prev != me {
					errs <- "handle-keyed Swap saw foreign value"
					return
				}
			}
			s.ClearG(gid)
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if got := s.Len(); got != 0 {
		t.Fatalf("Len after concurrent churn = %d, want 0", got)
	}
}

// TestCachedGidPathAllocFree pins the tentpole property at the gls layer:
// once a dispatch has resolved its Self handle, every store operation keyed
// by it is allocation-free (values are stored unboxed).
func TestCachedGidPathAllocFree(t *testing.T) {
	type ftlLike struct {
		chain [16]byte
		seq   uint64
	}
	s := NewStore[ftlLike]()
	gid := Self().ID()
	defer s.ClearG(gid)
	allocs := testing.AllocsPerRun(100, func() {
		s.SetG(gid, ftlLike{seq: 7})
		if _, ok := s.GetG(gid); !ok {
			t.Fatal("lost value")
		}
		s.SwapG(gid, ftlLike{seq: 8})
		s.ClearG(gid)
	})
	if allocs != 0 {
		t.Fatalf("cached-GID store path allocates %v per op cycle, want 0", allocs)
	}
}

// TestGoroutineIDAllocFree pins the pooled-stack-buffer property: resolving
// the calling goroutine's identity must not allocate, or every dispatch pays
// two hidden allocations (stub-side and skeleton-side Self).
func TestGoroutineIDAllocFree(t *testing.T) {
	if allocs := testing.AllocsPerRun(100, func() {
		if GoroutineID() == 0 {
			t.Fatal("GoroutineID returned 0")
		}
	}); allocs != 0 {
		t.Fatalf("GoroutineID allocates %v per call, want 0", allocs)
	}
}

func BenchmarkGoroutineID(b *testing.B) {
	for i := 0; i < b.N; i++ {
		GoroutineID()
	}
}

func BenchmarkStoreGet(b *testing.B) {
	s := NewStore[int]()
	s.Set(42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get()
	}
}
