package gls

import (
	"sync"
	"testing"
)

func TestGoroutineIDStableAndDistinct(t *testing.T) {
	id1 := GoroutineID()
	id2 := GoroutineID()
	if id1 == 0 {
		t.Fatal("GoroutineID returned 0")
	}
	if id1 != id2 {
		t.Fatalf("unstable id on same goroutine: %d then %d", id1, id2)
	}
	ch := make(chan uint64)
	go func() { ch <- GoroutineID() }()
	other := <-ch
	if other == id1 {
		t.Fatal("two goroutines share an id")
	}
}

func TestSetGetClear(t *testing.T) {
	s := NewStore()
	if _, ok := s.Get(); ok {
		t.Fatal("fresh store has a value")
	}
	s.Set("hello")
	v, ok := s.Get()
	if !ok || v != "hello" {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	s.Clear()
	if _, ok := s.Get(); ok {
		t.Fatal("value survived Clear")
	}
}

func TestIsolationBetweenGoroutines(t *testing.T) {
	s := NewStore()
	const n = 32
	var wg sync.WaitGroup
	errs := make(chan string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(me int) {
			defer wg.Done()
			s.Set(me)
			for j := 0; j < 100; j++ {
				v, ok := s.Get()
				if !ok || v != me {
					errs <- "goroutine saw foreign value"
					return
				}
			}
			s.Clear()
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if got := s.Len(); got != 0 {
		t.Fatalf("Len after all cleared = %d, want 0", got)
	}
}

func TestSwapSaveRestore(t *testing.T) {
	s := NewStore()
	s.Set("outer")
	prev, had := s.Swap("inner")
	if !had || prev != "outer" {
		t.Fatalf("Swap returned %v, %v", prev, had)
	}
	if v, _ := s.Get(); v != "inner" {
		t.Fatalf("after swap Get = %v", v)
	}
	// Restore, as an STA loop would around dispatch.
	s.Set(prev)
	if v, _ := s.Get(); v != "outer" {
		t.Fatalf("after restore Get = %v", v)
	}
	s.Clear()
}

func TestSwapOnEmpty(t *testing.T) {
	s := NewStore()
	prev, had := s.Swap(1)
	if had || prev != nil {
		t.Fatalf("Swap on empty = %v, %v", prev, had)
	}
	s.Clear()
}

func TestExplicitGidOps(t *testing.T) {
	s := NewStore()
	s.SetG(12345, "x")
	if v, ok := s.GetG(12345); !ok || v != "x" {
		t.Fatalf("GetG = %v, %v", v, ok)
	}
	if _, ok := s.Get(); ok {
		t.Fatal("calling goroutine should have no value")
	}
	s.ClearG(12345)
	if s.Len() != 0 {
		t.Fatal("ClearG left residue")
	}
}

func BenchmarkGoroutineID(b *testing.B) {
	for i := 0; i < b.N; i++ {
		GoroutineID()
	}
}

func BenchmarkStoreGet(b *testing.B) {
	s := NewStore()
	s.Set(42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get()
	}
}
