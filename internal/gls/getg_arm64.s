//go:build gc

#include "textflag.h"

// func getg() uintptr
//
// On arm64 the current g pointer is pinned in the dedicated g register
// (R28, spelled "g" in Go assembly).
TEXT ·getg(SB), NOSPLIT|NOFRAME, $0-8
	MOVD	g, ret+0(FP)
	RET
