// Package gls provides goroutine-local storage: the Go analog of the
// thread-specific storage (TSS) the paper's virtual tunnel relies on.
//
// The tunnel transports the Function-Transportable Log from a function
// implementation body down to its child function's stub "through a
// thread-specific storage … completely transparent to user applications"
// (paper §2.1, Figure 2). Go deliberately hides goroutine identity, so a
// library-level analog must recover it from the runtime stack header; this
// is the one non-idiomatic trick the transparent-tunnel property requires,
// and it is confined to this package.
//
// Recovering the identity costs microseconds (a runtime.Stack call), so the
// hot path resolves it exactly once per dispatch: Self returns a G handle
// that probe sites capture at stub entry / skeleton dispatch and thread
// through every subsequent probe and tunnel operation via the *G method
// variants. A G is only valid on the goroutine that resolved it.
//
// Slots must be explicitly cleared (or the goroutine Released) when a
// logical execution entity finishes; the ORB runtime does this on every
// dispatch, realizing the paper's observation O2 (a pooled thread is always
// refreshed with the latest FTL and never leaks a stale one).
package gls

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// shardCount spreads goroutine slots over independently locked maps to keep
// contention low when many dispatch goroutines run probes concurrently.
const shardCount = 64

type shard[T any] struct {
	mu sync.RWMutex
	m  map[uint64]T
}

// Store is a goroutine-keyed map. Each goroutine sees its own value.
// The zero value is not usable; create Stores with NewStore. Values are
// stored by their concrete type — no interface boxing — so storing a small
// struct (the FTL) allocates nothing.
type Store[T any] struct {
	shards [shardCount]shard[T]
}

// NewStore returns an empty Store.
func NewStore[T any]() *Store[T] {
	s := &Store[T]{}
	for i := range s.shards {
		s.shards[i].m = make(map[uint64]T)
	}
	return s
}

// G is a resolved goroutine identity: the handle Self returns. Capture it
// once at dispatch entry and reuse it for every probe and tunnel operation
// of that dispatch — each reuse saves a runtime.Stack parse. A G must not
// cross goroutines (except through scheduler APIs that explicitly manage
// logical threads on other goroutines' behalf).
type G uint64

// Self resolves the calling goroutine's identity. It is the entry point of
// the allocation-free probe path: stubs call it (inside StubStart) at probe
// 1, the ORB calls it once per skeleton dispatch, and everything downstream
// reuses the handle.
//
// Goroutines that pre-registered with Register resolve in constant time (a
// g-register read plus one sharded map hit, ~25ns); everything else falls
// back to the pooled runtime.Stack parse (~3µs). Long-lived dispatch
// goroutines — ORB pool workers, transport read loops, STA message loops —
// register at birth so steady-state requests never touch runtime.Stack.
func Self() G {
	if fastOK.Load() {
		p := getg()
		sh := regShardFor(p)
		sh.mu.RLock()
		g, ok := sh.m[p]
		sh.mu.RUnlock()
		if ok {
			return g
		}
	}
	return G(GoroutineID())
}

// SelfID is Self().ID() without the handle wrapper: the gid resolve used by
// the Store convenience methods.
func SelfID() uint64 { return uint64(Self()) }

// ID returns the raw goroutine id the handle was resolved from.
func (g G) ID() uint64 { return uint64(g) }

// Registration fast path ----------------------------------------------------
//
// The registry maps the opaque runtime g pointer (see getg) of a registered
// goroutine to its parsed G handle. The g pointer is read in a couple of
// nanoseconds, so a registered goroutine's Self is a map hit instead of a
// runtime.Stack call. The registry is sharded like Store to keep concurrent
// dispatch goroutines off each other's locks.
//
// Contract: only the goroutine itself may Register, and it must Unregister
// (on itself) before it returns — the runtime reuses g structs, so a stale
// registration could hand a recycled goroutine the previous owner's
// identity. Pool workers register once at birth and unregister on shutdown;
// per-request goroutines pair Register with defer Unregister.

type regShard struct {
	mu sync.RWMutex
	m  map[uintptr]G
}

var regTable [shardCount]regShard

// fastOK gates the registration fast path: set at init only if the getg
// primitive self-validates on this platform/runtime.
var fastOK atomic.Bool

func init() {
	for i := range regTable {
		regTable[i].m = make(map[uintptr]G)
	}
	if getgAvailable {
		fastOK.Store(validateGetg())
	}
}

func regShardFor(p uintptr) *regShard {
	// Fibonacci hash: g pointers are heap addresses with shared low bits.
	return &regTable[(uint64(p)*0x9E3779B97F4A7C15)>>(64-6)]
}

// validateGetg proves the getg primitive behaves as an identity on this
// runtime: non-zero, stable across calls on one goroutine, and distinct
// across goroutines that are alive simultaneously. Any failure disables the
// fast path; correctness then rests solely on the stack parse.
func validateGetg() bool {
	if getg() == 0 {
		return false
	}
	const n = 8
	ptrs := make([]uintptr, n)
	var ready, done sync.WaitGroup
	release := make(chan struct{})
	for i := 0; i < n; i++ {
		ready.Add(1)
		done.Add(1)
		go func(i int) {
			defer done.Done()
			p := getg()
			ready.Done()
			<-release // hold all n goroutines alive at once
			if getg() == p {
				ptrs[i] = p
			}
		}(i)
	}
	ready.Wait()
	close(release)
	done.Wait()
	seen := make(map[uintptr]bool, n)
	for _, p := range ptrs {
		if p == 0 || seen[p] {
			return false
		}
		seen[p] = true
	}
	return true
}

// Register resolves the calling goroutine's identity once (one stack parse)
// and pins it in the fast-path registry, so every subsequent Self from this
// goroutine is constant-time. Returns the handle so owners can thread it
// directly. Re-registering is idempotent. The caller must Unregister on the
// same goroutine before it exits.
func Register() G {
	g := G(GoroutineID())
	if fastOK.Load() {
		p := getg()
		sh := regShardFor(p)
		sh.mu.Lock()
		sh.m[p] = g
		sh.mu.Unlock()
	}
	return g
}

// syntheticCtr mints ids for RegisterFresh. Synthetic ids live in the top
// half of the id space (syntheticBase bit set) so they can never collide
// with runtime goroutine ids, which count up from 1.
var syntheticCtr atomic.Uint64

const syntheticBase uint64 = 1 << 63

// RegisterFresh registers the calling goroutine under a freshly minted
// synthetic identity, skipping the runtime.Stack parse entirely. It is the
// right registration for goroutines that are *born owned* — per-request
// dispatch threads, MTA call goroutines — which have produced no records
// under their runtime id before registering, so any process-unique id
// serves as their logical thread id. Synthetic ids carry the top bit, a
// namespace runtime ids (which count from 1) can never reach.
//
// When the fast path is unavailable the registry cannot make Self return
// the synthetic handle, so RegisterFresh degrades to Register (one parse):
// the returned handle then agrees with what downstream Self calls resolve.
// Like Register, the caller must Unregister on the same goroutine before
// it exits.
func RegisterFresh() G {
	if fastOK.Load() {
		g := G(syntheticBase | syntheticCtr.Add(1))
		p := getg()
		sh := regShardFor(p)
		sh.mu.Lock()
		sh.m[p] = g
		sh.mu.Unlock()
		return g
	}
	return Register()
}

// Unregister removes the calling goroutine's fast-path registration. Must
// run on the goroutine that called Register.
func Unregister() {
	if fastOK.Load() {
		p := getg()
		sh := regShardFor(p)
		sh.mu.Lock()
		delete(sh.m, p)
		sh.mu.Unlock()
	}
}

// Registered reports whether the calling goroutine has a live fast-path
// registration.
func Registered() bool {
	if !fastOK.Load() {
		return false
	}
	p := getg()
	sh := regShardFor(p)
	sh.mu.RLock()
	_, ok := sh.m[p]
	sh.mu.RUnlock()
	return ok
}

// FastPathEnabled reports whether the getg fast path validated on this
// platform. When false, Register/Unregister are no-ops and Self always
// parses.
func FastPathEnabled() bool { return fastOK.Load() }

// Scratch buffers -----------------------------------------------------------

const (
	// stackBufMin comfortably holds the "goroutine <id> [state]:" header.
	stackBufMin = 64
	// stackBufCap clamps what Put returns to the pool, mirroring the cdr
	// encoder pool: a pathological growth episode must not pin large
	// buffers in the pool forever.
	stackBufCap = 4096
)

// stackBufPool recycles the scratch buffers GoroutineID hands to
// runtime.Stack. The runtime retains its argument past the call from the
// compiler's point of view, so a local slice would escape and every
// resolution would allocate; pooling keeps the resolve allocation-free.
var stackBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, stackBufMin)
		return &b
	},
}

func putStackBuf(bp *[]byte) {
	if cap(*bp) > stackBufCap {
		return // oversized: let it be collected rather than pinned
	}
	stackBufPool.Put(bp)
}

// GoroutineID returns the runtime id of the calling goroutine.
//
// The id is parsed from the first line of the runtime stack trace
// ("goroutine N [running]:"). This costs on the order of a microsecond —
// the dominant probe cost — which is why the hot path resolves it once per
// dispatch (see Self) rather than once per probe, and why registered
// goroutines bypass it entirely. If the scratch buffer is too small to
// prove the digits complete, it doubles and retries (then Put clamps).
func GoroutineID() uint64 {
	bp := stackBufPool.Get().(*[]byte)
	id, ok := parseGID(*bp)
	for !ok {
		*bp = make([]byte, cap(*bp)*2)
		id, ok = parseGID(*bp)
	}
	putStackBuf(bp)
	return id
}

// parseGID fills buf from runtime.Stack and parses the goroutine id from
// the header. ok is false when the digits may have been truncated by a
// too-small buffer (they ran to the very end of the written bytes).
func parseGID(buf []byte) (uint64, bool) {
	n := runtime.Stack(buf, false)
	const prefix = len("goroutine ")
	if n <= prefix {
		return 0, false
	}
	var id uint64
	i := prefix
	for ; i < n; i++ {
		c := buf[i]
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	if i == n {
		return 0, false
	}
	return id, id != 0
}

func (s *Store[T]) shardFor(gid uint64) *shard[T] {
	return &s.shards[gid%shardCount]
}

// Get returns the calling goroutine's value and whether one was set.
func (s *Store[T]) Get() (T, bool) {
	return s.GetG(SelfID())
}

// GetG is Get for an explicit goroutine id (used by schedulers that manage
// logical threads on behalf of other goroutines, and by probe sites that
// already hold a Self handle).
func (s *Store[T]) GetG(gid uint64) (T, bool) {
	sh := s.shardFor(gid)
	sh.mu.RLock()
	v, ok := sh.m[gid]
	sh.mu.RUnlock()
	return v, ok
}

// Set stores v for the calling goroutine.
func (s *Store[T]) Set(v T) {
	s.SetG(SelfID(), v)
}

// SetG is Set for an explicit goroutine id.
func (s *Store[T]) SetG(gid uint64, v T) {
	sh := s.shardFor(gid)
	sh.mu.Lock()
	sh.m[gid] = v
	sh.mu.Unlock()
}

// Clear removes the calling goroutine's value, if any.
func (s *Store[T]) Clear() {
	s.ClearG(SelfID())
}

// ClearG is Clear for an explicit goroutine id.
func (s *Store[T]) ClearG(gid uint64) {
	sh := s.shardFor(gid)
	sh.mu.Lock()
	delete(sh.m, gid)
	sh.mu.Unlock()
}

// Swap stores v for the calling goroutine and returns the previous value.
// Schedulers that multiplex one goroutine across logical calls (the COM STA
// message loop) use Swap to save and restore tunnel state around dispatch,
// which is exactly the paper's fix for causal chain mingling (§2.2).
func (s *Store[T]) Swap(v T) (prev T, had bool) {
	return s.SwapG(SelfID(), v)
}

// SwapG is Swap for an explicit goroutine id.
func (s *Store[T]) SwapG(gid uint64, v T) (prev T, had bool) {
	sh := s.shardFor(gid)
	sh.mu.Lock()
	prev, had = sh.m[gid]
	sh.m[gid] = v
	sh.mu.Unlock()
	return prev, had
}

// Len reports how many goroutines currently hold values; useful in leak
// tests asserting that dispatch paths always clear their slots.
func (s *Store[T]) Len() int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		total += len(sh.m)
		sh.mu.RUnlock()
	}
	return total
}
