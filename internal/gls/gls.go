// Package gls provides goroutine-local storage: the Go analog of the
// thread-specific storage (TSS) the paper's virtual tunnel relies on.
//
// The tunnel transports the Function-Transportable Log from a function
// implementation body down to its child function's stub "through a
// thread-specific storage … completely transparent to user applications"
// (paper §2.1, Figure 2). Go deliberately hides goroutine identity, so a
// library-level analog must recover it from the runtime stack header; this
// is the one non-idiomatic trick the transparent-tunnel property requires,
// and it is confined to this package.
//
// Recovering the identity costs microseconds (a runtime.Stack call), so the
// hot path resolves it exactly once per dispatch: Self returns a G handle
// that probe sites capture at stub entry / skeleton dispatch and thread
// through every subsequent probe and tunnel operation via the *G method
// variants. A G is only valid on the goroutine that resolved it.
//
// Slots must be explicitly cleared (or the goroutine Released) when a
// logical execution entity finishes; the ORB runtime does this on every
// dispatch, realizing the paper's observation O2 (a pooled thread is always
// refreshed with the latest FTL and never leaks a stale one).
package gls

import (
	"runtime"
	"sync"
)

// shardCount spreads goroutine slots over independently locked maps to keep
// contention low when many dispatch goroutines run probes concurrently.
const shardCount = 64

type shard[T any] struct {
	mu sync.RWMutex
	m  map[uint64]T
}

// Store is a goroutine-keyed map. Each goroutine sees its own value.
// The zero value is not usable; create Stores with NewStore. Values are
// stored by their concrete type — no interface boxing — so storing a small
// struct (the FTL) allocates nothing.
type Store[T any] struct {
	shards [shardCount]shard[T]
}

// NewStore returns an empty Store.
func NewStore[T any]() *Store[T] {
	s := &Store[T]{}
	for i := range s.shards {
		s.shards[i].m = make(map[uint64]T)
	}
	return s
}

// G is a resolved goroutine identity: the handle Self returns. Capture it
// once at dispatch entry and reuse it for every probe and tunnel operation
// of that dispatch — each reuse saves a runtime.Stack parse. A G must not
// cross goroutines (except through scheduler APIs that explicitly manage
// logical threads on other goroutines' behalf).
type G uint64

// Self resolves the calling goroutine's identity once. It is the entry
// point of the allocation-free probe path: stubs call it (inside StubStart)
// at probe 1, the ORB calls it once per skeleton dispatch, and everything
// downstream reuses the handle.
func Self() G { return G(GoroutineID()) }

// ID returns the raw goroutine id the handle was resolved from.
func (g G) ID() uint64 { return uint64(g) }

// stackBufPool recycles the scratch buffers GoroutineID hands to
// runtime.Stack. The runtime retains its argument past the call from the
// compiler's point of view, so a local array would escape and every
// resolution would allocate; pooling keeps the resolve allocation-free.
var stackBufPool = sync.Pool{
	New: func() any { return new([40]byte) },
}

// GoroutineID returns the runtime id of the calling goroutine.
//
// The id is parsed from the first line of the runtime stack trace
// ("goroutine N [running]:"). This costs on the order of a microsecond —
// the dominant probe cost — which is why the hot path resolves it once per
// dispatch (see Self) rather than once per probe.
func GoroutineID() uint64 {
	bp := stackBufPool.Get().(*[40]byte)
	buf := bp
	n := runtime.Stack(buf[:], false)
	// Header is "goroutine <id> [...": parse the digits in place.
	const prefix = len("goroutine ")
	var id uint64
	if n > prefix {
		for _, c := range buf[prefix:n] {
			if c < '0' || c > '9' {
				break
			}
			id = id*10 + uint64(c-'0')
		}
	}
	stackBufPool.Put(bp)
	return id
}

func (s *Store[T]) shardFor(gid uint64) *shard[T] {
	return &s.shards[gid%shardCount]
}

// Get returns the calling goroutine's value and whether one was set.
func (s *Store[T]) Get() (T, bool) {
	return s.GetG(GoroutineID())
}

// GetG is Get for an explicit goroutine id (used by schedulers that manage
// logical threads on behalf of other goroutines, and by probe sites that
// already hold a Self handle).
func (s *Store[T]) GetG(gid uint64) (T, bool) {
	sh := s.shardFor(gid)
	sh.mu.RLock()
	v, ok := sh.m[gid]
	sh.mu.RUnlock()
	return v, ok
}

// Set stores v for the calling goroutine.
func (s *Store[T]) Set(v T) {
	s.SetG(GoroutineID(), v)
}

// SetG is Set for an explicit goroutine id.
func (s *Store[T]) SetG(gid uint64, v T) {
	sh := s.shardFor(gid)
	sh.mu.Lock()
	sh.m[gid] = v
	sh.mu.Unlock()
}

// Clear removes the calling goroutine's value, if any.
func (s *Store[T]) Clear() {
	s.ClearG(GoroutineID())
}

// ClearG is Clear for an explicit goroutine id.
func (s *Store[T]) ClearG(gid uint64) {
	sh := s.shardFor(gid)
	sh.mu.Lock()
	delete(sh.m, gid)
	sh.mu.Unlock()
}

// Swap stores v for the calling goroutine and returns the previous value.
// Schedulers that multiplex one goroutine across logical calls (the COM STA
// message loop) use Swap to save and restore tunnel state around dispatch,
// which is exactly the paper's fix for causal chain mingling (§2.2).
func (s *Store[T]) Swap(v T) (prev T, had bool) {
	return s.SwapG(GoroutineID(), v)
}

// SwapG is Swap for an explicit goroutine id.
func (s *Store[T]) SwapG(gid uint64, v T) (prev T, had bool) {
	sh := s.shardFor(gid)
	sh.mu.Lock()
	prev, had = sh.m[gid]
	sh.m[gid] = v
	sh.mu.Unlock()
	return prev, had
}

// Len reports how many goroutines currently hold values; useful in leak
// tests asserting that dispatch paths always clear their slots.
func (s *Store[T]) Len() int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		total += len(sh.m)
		sh.mu.RUnlock()
	}
	return total
}
