// Package gls provides goroutine-local storage: the Go analog of the
// thread-specific storage (TSS) the paper's virtual tunnel relies on.
//
// The tunnel transports the Function-Transportable Log from a function
// implementation body down to its child function's stub "through a
// thread-specific storage … completely transparent to user applications"
// (paper §2.1, Figure 2). Go deliberately hides goroutine identity, so a
// library-level analog must recover it from the runtime stack header; this
// is the one non-idiomatic trick the transparent-tunnel property requires,
// and it is confined to this package.
//
// Slots must be explicitly cleared (or the goroutine Released) when a
// logical execution entity finishes; the ORB runtime does this on every
// dispatch, realizing the paper's observation O2 (a pooled thread is always
// refreshed with the latest FTL and never leaks a stale one).
package gls

import (
	"runtime"
	"sync"
)

// shardCount spreads goroutine slots over independently locked maps to keep
// contention low when many dispatch goroutines run probes concurrently.
const shardCount = 64

type shard struct {
	mu sync.RWMutex
	m  map[uint64]any
}

// Store is a goroutine-keyed map. Each goroutine sees its own value.
// The zero value is not usable; create Stores with NewStore.
type Store struct {
	shards [shardCount]shard
}

// NewStore returns an empty Store.
func NewStore() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].m = make(map[uint64]any)
	}
	return s
}

// GoroutineID returns the runtime id of the calling goroutine.
//
// The id is parsed from the first line of the runtime stack trace
// ("goroutine N [running]:"). This costs roughly a microsecond; probe sites
// cache it per dispatch where possible.
func GoroutineID() uint64 {
	var buf [40]byte
	n := runtime.Stack(buf[:], false)
	// Header is "goroutine <id> [...": parse the digits in place.
	const prefix = len("goroutine ")
	if n <= prefix {
		return 0
	}
	var id uint64
	for _, c := range buf[prefix:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

func (s *Store) shardFor(gid uint64) *shard {
	return &s.shards[gid%shardCount]
}

// Get returns the calling goroutine's value and whether one was set.
func (s *Store) Get() (any, bool) {
	return s.GetG(GoroutineID())
}

// GetG is Get for an explicit goroutine id (used by schedulers that manage
// logical threads on behalf of other goroutines).
func (s *Store) GetG(gid uint64) (any, bool) {
	sh := s.shardFor(gid)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	v, ok := sh.m[gid]
	return v, ok
}

// Set stores v for the calling goroutine.
func (s *Store) Set(v any) {
	s.SetG(GoroutineID(), v)
}

// SetG is Set for an explicit goroutine id.
func (s *Store) SetG(gid uint64, v any) {
	sh := s.shardFor(gid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.m[gid] = v
}

// Clear removes the calling goroutine's value, if any.
func (s *Store) Clear() {
	s.ClearG(GoroutineID())
}

// ClearG is Clear for an explicit goroutine id.
func (s *Store) ClearG(gid uint64) {
	sh := s.shardFor(gid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.m, gid)
}

// Swap stores v for the calling goroutine and returns the previous value.
// Schedulers that multiplex one goroutine across logical calls (the COM STA
// message loop) use Swap to save and restore tunnel state around dispatch,
// which is exactly the paper's fix for causal chain mingling (§2.2).
func (s *Store) Swap(v any) (prev any, had bool) {
	gid := GoroutineID()
	sh := s.shardFor(gid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	prev, had = sh.m[gid]
	sh.m[gid] = v
	return prev, had
}

// Len reports how many goroutines currently hold values; useful in leak
// tests asserting that dispatch paths always clear their slots.
func (s *Store) Len() int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		total += len(sh.m)
		sh.mu.RUnlock()
	}
	return total
}
