//go:build !((amd64 || arm64) && gc)

package gls

// getg has no cheap implementation on this platform; returning 0 fails the
// init-time validation, which disables the registration fast path and keeps
// every identity resolution on the (correct, slower) runtime.Stack parse.
func getg() uintptr { return 0 }

const getgAvailable = false
