//go:build (amd64 || arm64) && gc

package gls

// getg returns the address of the runtime g struct of the calling
// goroutine, read straight from the reserved g register (R14 on amd64 under
// the register ABI, R28 on arm64). The pointer is opaque — it is never
// dereferenced — but it is stable for the lifetime of a goroutine, which
// makes it a perfect constant-time identity key: resolving it costs a
// couple of nanoseconds versus ~3µs for the runtime.Stack header parse.
//
// The runtime may reuse a g struct after its goroutine exits, so the
// pointer is only meaningful while the goroutine that produced it is alive.
// That is exactly the Register/Unregister contract: a registration must be
// removed (on the registering goroutine) before the goroutine returns.
//
// validateGetg exercises the primitive at init time; if the returned
// pointers are zero, unstable, or not distinct across live goroutines the
// fast path is disabled and every caller falls back to the stack parse.
func getg() uintptr

// getgAvailable reports that this build has the assembly primitive; the
// init-time validation still has the final say.
const getgAvailable = true
