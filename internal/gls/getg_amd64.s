//go:build gc

#include "textflag.h"

// func getg() uintptr
//
// Under the Go 1.17+ amd64 register ABI the current g pointer lives in R14.
// NOSPLIT|NOFRAME: no stack growth check, so the read cannot itself move
// the stack or reschedule between reading the register and returning it.
TEXT ·getg(SB), NOSPLIT|NOFRAME, $0-8
	MOVQ	R14, ret+0(FP)
	RET
