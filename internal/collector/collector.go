// Package collector gathers the scattered per-process monitoring logs into
// one logdb.Store, the step the paper performs "when the application ceases
// to exist or reaches a quiescent state" (§3).
//
// No record transformation happens here: records are self-describing
// (process, processor type, thread, chain, event, seq), so collection is a
// pure merge — exactly why the paper needs no global clock.
package collector

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"causeway/internal/logdb"
	"causeway/internal/probe"
)

// FromSinks merges in-memory sinks (one per logical process) into db.
func FromSinks(db *logdb.Store, sinks ...*probe.MemorySink) int {
	n := 0
	for _, s := range sinks {
		recs := s.Snapshot()
		db.Insert(recs...)
		n += len(recs)
	}
	return n
}

// FromReaders merges gob record streams (e.g. per-process log files).
func FromReaders(db *logdb.Store, readers ...io.Reader) (int, error) {
	n := 0
	for i, r := range readers {
		recs, err := probe.ReadStream(r)
		if err != nil {
			return n, fmt.Errorf("collector: reader %d: %w", i, err)
		}
		db.Insert(recs...)
		n += len(recs)
	}
	return n, nil
}

// FromGlob merges all log files matching pattern (e.g. "run1/*.ftlog").
// Files are processed in sorted order for determinism.
func FromGlob(db *logdb.Store, pattern string) (int, error) {
	paths, err := filepath.Glob(pattern)
	if err != nil {
		return 0, fmt.Errorf("collector: glob %q: %w", pattern, err)
	}
	sort.Strings(paths)
	n := 0
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return n, fmt.Errorf("collector: open %q: %w", p, err)
		}
		m, err := FromReaders(db, f)
		f.Close()
		n += m
		if err != nil {
			return n, fmt.Errorf("collector: %q: %w", p, err)
		}
	}
	return n, nil
}
