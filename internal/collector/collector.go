// Package collector gathers the scattered per-process monitoring logs into
// one logdb.Store, the step the paper performs "when the application ceases
// to exist or reaches a quiescent state" (§3).
//
// No record transformation happens here: records are self-describing
// (process, processor type, thread, chain, event, seq), so collection is a
// pure merge — exactly why the paper needs no global clock.
package collector

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"causeway/internal/logdb"
	"causeway/internal/probe"
)

// FromSinks merges in-memory sinks (one per logical process) into db.
func FromSinks(db *logdb.Store, sinks ...*probe.MemorySink) int {
	n := 0
	for _, s := range sinks {
		recs := s.Snapshot()
		db.Insert(recs...)
		n += len(recs)
	}
	return n
}

// FromReaders merges gob record streams (e.g. per-process log files).
//
// A stream with a torn tail record — the complete prefix a crashed writer
// left behind — contributes its readable records, counts one warning, and
// the merge continues with the remaining readers. Any harder decode
// failure aborts. The paper's collection step runs post-mortem, so
// surviving partial logs is exactly the crash-tolerance it needs.
func FromReaders(db *logdb.Store, readers ...io.Reader) (n, warnings int, err error) {
	for i, r := range readers {
		recs, err := probe.ReadStream(r)
		db.Insert(recs...)
		n += len(recs)
		if err != nil {
			if errors.Is(err, probe.ErrTruncated) {
				warnings++
				continue
			}
			return n, warnings, fmt.Errorf("collector: reader %d: %w", i, err)
		}
	}
	return n, warnings, nil
}

// FromGlob merges all log files matching pattern (e.g. "run1/*.ftlog").
// Files are processed in sorted order for determinism. Truncated tails are
// tolerated per FromReaders and reported through the warning count.
func FromGlob(db *logdb.Store, pattern string) (n, warnings int, err error) {
	paths, err := filepath.Glob(pattern)
	if err != nil {
		return 0, 0, fmt.Errorf("collector: glob %q: %w", pattern, err)
	}
	sort.Strings(paths)
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return n, warnings, fmt.Errorf("collector: open %q: %w", p, err)
		}
		m, w, err := FromReaders(db, f)
		f.Close()
		n += m
		warnings += w
		if err != nil {
			return n, warnings, fmt.Errorf("collector: %q: %w", p, err)
		}
	}
	return n, warnings, nil
}
