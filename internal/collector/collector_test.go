package collector

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"testing"

	"causeway/internal/ftl"
	"causeway/internal/logdb"
	"causeway/internal/probe"
	"causeway/internal/uuid"
)

func rec(proc string, seq uint64) probe.Record {
	return probe.Record{
		Kind: probe.KindEvent, Process: proc, Chain: uuid.UUID{0: 1},
		Seq: seq, Event: ftl.StubStart,
	}
}

func TestFromSinks(t *testing.T) {
	a, b := &probe.MemorySink{}, &probe.MemorySink{}
	a.Append(rec("p1", 1))
	a.Append(rec("p1", 2))
	b.Append(rec("p2", 3))
	db := logdb.NewStore()
	if n := FromSinks(db, a, b); n != 3 {
		t.Fatalf("collected %d", n)
	}
	if db.Len() != 3 {
		t.Fatalf("db has %d", db.Len())
	}
}

func TestFromReaders(t *testing.T) {
	var buf bytes.Buffer
	ss := probe.NewStreamSink(&buf)
	ss.Append(rec("p1", 1))
	ss.Append(rec("p1", 2))
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}
	db := logdb.NewStore()
	n, warn, err := FromReaders(db, &buf)
	if err != nil || n != 2 || warn != 0 {
		t.Fatalf("FromReaders = %d records, %d warnings, %v", n, warn, err)
	}
	// A corrupt (non-truncated) stream still reports a hard error: a gob
	// stream of the wrong type is a type mismatch, not a torn tail.
	var wrong bytes.Buffer
	if err := gob.NewEncoder(&wrong).Encode(42); err != nil {
		t.Fatal(err)
	}
	n2, _, err := FromReaders(db, &wrong)
	if err == nil {
		t.Fatalf("corrupt stream accepted (%d records)", n2)
	}
}

func TestFromReadersToleratesTruncatedTail(t *testing.T) {
	encode := func(proc string, count int) []byte {
		var buf bytes.Buffer
		ss := probe.NewStreamSink(&buf)
		for i := 0; i < count; i++ {
			ss.Append(rec(proc, uint64(i+1)))
		}
		if err := ss.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	crashed := encode("p1", 3)
	crashed = crashed[:len(crashed)-2] // torn tail record
	healthy := encode("p2", 2)

	db := logdb.NewStore()
	n, warn, err := FromReaders(db, bytes.NewReader(crashed), bytes.NewReader(healthy))
	if err != nil {
		t.Fatalf("merge aborted: %v", err)
	}
	if warn != 1 {
		t.Fatalf("warnings = %d, want 1", warn)
	}
	// p1's two intact records plus all of p2's survive.
	if n != 4 || db.Len() != 4 {
		t.Fatalf("merged %d records (db %d), want 4", n, db.Len())
	}
}

func TestFromGlob(t *testing.T) {
	dir := t.TempDir()
	for i, proc := range []string{"p1", "p2"} {
		var buf bytes.Buffer
		ss := probe.NewStreamSink(&buf)
		ss.Append(rec(proc, uint64(i+1)))
		if err := ss.Close(); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, proc+".ftlog")
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	db := logdb.NewStore()
	n, warn, err := FromGlob(db, filepath.Join(dir, "*.ftlog"))
	if err != nil || n != 2 || warn != 0 {
		t.Fatalf("FromGlob = %d, %d, %v", n, warn, err)
	}
	if n, _, err := FromGlob(logdb.NewStore(), filepath.Join(dir, "*.none")); err != nil || n != 0 {
		t.Fatalf("empty glob = %d, %v", n, err)
	}
}

func TestFromGlobKeepsMergingPastCrashedFile(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, data []byte) {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	ss := probe.NewStreamSink(&buf)
	ss.Append(rec("p1", 1))
	ss.Append(rec("p1", 2))
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}
	write("a-crashed.ftlog", buf.Bytes()[:buf.Len()-1])
	buf.Reset()
	ss = probe.NewStreamSink(&buf)
	ss.Append(rec("p2", 1))
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}
	write("b-healthy.ftlog", buf.Bytes())

	db := logdb.NewStore()
	n, warn, err := FromGlob(db, filepath.Join(dir, "*.ftlog"))
	if err != nil {
		t.Fatalf("merge aborted: %v", err)
	}
	if n != 2 || warn != 1 {
		t.Fatalf("merged %d records with %d warnings, want 2 records, 1 warning", n, warn)
	}
}
