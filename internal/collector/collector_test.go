package collector

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"causeway/internal/ftl"
	"causeway/internal/logdb"
	"causeway/internal/probe"
	"causeway/internal/uuid"
)

func rec(proc string, seq uint64) probe.Record {
	return probe.Record{
		Kind: probe.KindEvent, Process: proc, Chain: uuid.UUID{0: 1},
		Seq: seq, Event: ftl.StubStart,
	}
}

func TestFromSinks(t *testing.T) {
	a, b := &probe.MemorySink{}, &probe.MemorySink{}
	a.Append(rec("p1", 1))
	a.Append(rec("p1", 2))
	b.Append(rec("p2", 3))
	db := logdb.NewStore()
	if n := FromSinks(db, a, b); n != 3 {
		t.Fatalf("collected %d", n)
	}
	if db.Len() != 3 {
		t.Fatalf("db has %d", db.Len())
	}
}

func TestFromReaders(t *testing.T) {
	var buf bytes.Buffer
	ss := probe.NewStreamSink(&buf)
	ss.Append(rec("p1", 1))
	ss.Append(rec("p1", 2))
	db := logdb.NewStore()
	n, err := FromReaders(db, &buf)
	if err != nil || n != 2 {
		t.Fatalf("FromReaders = %d, %v", n, err)
	}
	// A corrupt stream reports an error.
	n2, err := FromReaders(db, bytes.NewReader([]byte("garbage stream")))
	if err == nil {
		t.Fatalf("corrupt stream accepted (%d records)", n2)
	}
}

func TestFromGlob(t *testing.T) {
	dir := t.TempDir()
	for i, proc := range []string{"p1", "p2"} {
		var buf bytes.Buffer
		ss := probe.NewStreamSink(&buf)
		ss.Append(rec(proc, uint64(i+1)))
		path := filepath.Join(dir, proc+".ftlog")
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	db := logdb.NewStore()
	n, err := FromGlob(db, filepath.Join(dir, "*.ftlog"))
	if err != nil || n != 2 {
		t.Fatalf("FromGlob = %d, %v", n, err)
	}
	if n, err := FromGlob(logdb.NewStore(), filepath.Join(dir, "*.none")); err != nil || n != 0 {
		t.Fatalf("empty glob = %d, %v", n, err)
	}
}
