package transport

import (
	"encoding/binary"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTCPDeadlineExceeded is the core hung-server scenario: the server
// accepts the request and never replies, and Call must fail with
// ErrDeadlineExceeded within 2x the configured deadline, reclaiming its
// pending-map entry.
func TestTCPDeadlineExceeded(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	block := make(chan struct{})
	defer close(block)
	if err := srv.Serve(func(conn ConnID, req Request, respond Responder) {
		<-block // hang: never respond
	}); err != nil {
		t.Fatal(err)
	}
	c, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const timeout = 100 * time.Millisecond
	start := time.Now()
	_, err = c.Call(Request{Operation: "hang", Timeout: timeout})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if elapsed >= 2*timeout {
		t.Fatalf("deadline took %v, want < %v", elapsed, 2*timeout)
	}
	if n := c.Pending(); n != 0 {
		t.Fatalf("pending map holds %d entries after timeout, want 0", n)
	}
}

// TestInprocDeadlineExceeded mirrors the hung-server scenario on the
// in-process transport.
func TestInprocDeadlineExceeded(t *testing.T) {
	n := NewInprocNetwork()
	srv, err := n.Listen("hung")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	block := make(chan struct{})
	defer close(block)
	if err := srv.Serve(func(conn ConnID, req Request, respond Responder) {
		<-block
	}); err != nil {
		t.Fatal(err)
	}
	c, err := n.Dial("hung")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const timeout = 100 * time.Millisecond
	start := time.Now()
	_, err = c.Call(Request{Operation: "hang", Timeout: timeout})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if elapsed >= 2*timeout {
		t.Fatalf("deadline took %v, want < %v", elapsed, 2*timeout)
	}
}

// TestTCPLateReplyDiscarded abandons a call at its deadline, then lets the
// server reply anyway: the late reply must be discarded (counted, not
// delivered) and the connection must keep working for fresh calls.
func TestTCPLateReplyDiscarded(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	release := make(chan struct{})
	if err := srv.Serve(func(conn ConnID, req Request, respond Responder) {
		if req.Operation == "slow" {
			go func() {
				<-release
				respond(Reply{Status: StatusOK, Body: []byte("late")})
			}()
			return
		}
		respond(Reply{Status: StatusOK, Body: req.Body})
	}); err != nil {
		t.Fatal(err)
	}
	c, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Call(Request{Operation: "slow", Timeout: 30 * time.Millisecond}); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	close(release) // now the server sends the abandoned reply
	deadline := time.Now().Add(2 * time.Second)
	for c.Discarded() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("late reply never counted as discarded")
		}
		time.Sleep(time.Millisecond)
	}
	if n := c.Pending(); n != 0 {
		t.Fatalf("pending map holds %d entries, want 0", n)
	}
	// Fresh calls on the same connection still work and are not cross-wired
	// with the discarded reply.
	rep, err := c.Call(Request{Operation: "echo", Body: []byte("fresh"), Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if string(rep.Body) != "fresh" {
		t.Fatalf("reply body = %q, want the fresh echo, not the stale reply", rep.Body)
	}
}

// TestInprocLateReplyDiscarded covers the same abandonment on the
// in-process transport.
func TestInprocLateReplyDiscarded(t *testing.T) {
	n := NewInprocNetwork()
	srv, err := n.Listen("slow")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	release := make(chan struct{})
	if err := srv.Serve(func(conn ConnID, req Request, respond Responder) {
		<-release
		respond(Reply{Status: StatusOK, Body: []byte("late")})
	}); err != nil {
		t.Fatal(err)
	}
	cl, err := n.Dial("slow")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Call(Request{Operation: "slow", Timeout: 30 * time.Millisecond}); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	close(release)
	ic := cl.(*inprocClient)
	deadline := time.Now().Add(2 * time.Second)
	for ic.Discarded() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("late reply never counted as discarded")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTCPReplyWinsDeadlineRace drives many calls whose reply lands right
// around the deadline; every call must either deliver the genuine reply or
// fail with ErrDeadlineExceeded — never hang, never mis-deliver.
func TestTCPReplyWinsDeadlineRace(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Serve(func(conn ConnID, req Request, respond Responder) {
		go func() {
			time.Sleep(2 * time.Millisecond)
			respond(Reply{Status: StatusOK, Body: req.Body})
		}()
	}); err != nil {
		t.Fatal(err)
	}
	c, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 200; i++ {
		rep, err := c.Call(Request{Operation: "edge", Body: []byte{byte(i)}, Timeout: 2 * time.Millisecond})
		if err != nil {
			if !errors.Is(err, ErrDeadlineExceeded) {
				t.Fatalf("call %d: %v", i, err)
			}
			continue
		}
		if len(rep.Body) != 1 || rep.Body[0] != byte(i) {
			t.Fatalf("call %d: cross-wired reply %v", i, rep.Body)
		}
	}
	if n := c.Pending(); n != 0 {
		t.Fatalf("pending map holds %d entries, want 0", n)
	}
}

// TestTCPCallCloseRace loops Call against Close under the race detector:
// no interleaving may strand a caller or corrupt the pending map. This is
// the regression test for the closed-check-before-register window.
func TestTCPCallCloseRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		srv, err := ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Serve(func(conn ConnID, req Request, respond Responder) {
			respond(Reply{Status: StatusOK, Body: req.Body})
		}); err != nil {
			t.Fatal(err)
		}
		c, err := DialTCP(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					// Bounded wait so a stranded call fails the test loudly
					// instead of deadlocking it.
					_, err := c.Call(Request{Operation: "op", Timeout: 5 * time.Second})
					if err != nil {
						return // closed underneath us: expected
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Close()
		}()
		wg.Wait()
		if n := c.Pending(); n != 0 {
			t.Fatalf("round %d: %d pending entries leaked across close", round, n)
		}
		srv.Close()
	}
}

// rawReplyServer accepts one connection and lets the test write arbitrary
// frames to the client.
func rawReplyServer(t *testing.T) (addr string, conns <-chan net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	ch := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		ch <- conn
	}()
	return ln.Addr().String(), ch
}

// writeRawFrame length-prefixes payload exactly like writeFrame.
func writeRawFrame(t *testing.T, conn net.Conn, payload []byte) {
	t.Helper()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
}

// TestTCPCorruptReplyFailsConnection sends a well-framed but invalid reply
// payload; the client must fail the in-flight call with the specific
// transport: decode error and refuse further use of the connection.
func TestTCPCorruptReplyFailsConnection(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
		want    string
	}{
		{"unknown kind", append([]byte{0x7f}, EncodeReplyFrame(Reply{ID: 1, Status: StatusOK})[1:]...), "unknown frame kind"},
		{"reply id zero", EncodeReplyFrame(Reply{ID: 0, Status: StatusOK}), "request id 0"},
		{"truncated reply", EncodeReplyFrame(Reply{ID: 1, Status: StatusOK})[:3], "malformed reply"},
		{"empty frame", []byte{}, "empty frame"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addr, conns := rawReplyServer(t)
			c, err := DialTCP(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			errCh := make(chan error, 1)
			go func() {
				_, err := c.Call(Request{Operation: "op"})
				errCh <- err
			}()
			conn := <-conns
			defer conn.Close()
			// Drain the request frame, then poison the reply stream.
			if _, err := readFrame(conn); err != nil {
				t.Fatal(err)
			}
			writeRawFrame(t, conn, tc.payload)
			err = <-errCh
			if err == nil {
				t.Fatal("call succeeded on corrupt reply")
			}
			if !strings.Contains(err.Error(), "transport:") || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want transport: error containing %q", err, tc.want)
			}
			if _, err := c.Call(Request{Operation: "again"}); err == nil {
				t.Fatal("connection usable after corrupt frame")
			}
		})
	}
}

// TestDecodeReplyFrameRoundTrip pins Encode/Decode as inverses for valid
// replies.
func TestDecodeReplyFrameRoundTrip(t *testing.T) {
	want := Reply{ID: 42, Status: StatusUserException, Body: []byte("boom")}
	got, err := DecodeReplyFrame(EncodeReplyFrame(want))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != want.ID || got.Status != want.Status || string(got.Body) != string(want.Body) {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
}
