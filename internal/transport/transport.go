// Package transport moves request/reply messages between processes. It is
// the private communication channel the instrumented stub and skeleton
// share (Figure 2, solid lines): the FTL rides inside the request body the
// stub marshals, so the transport itself needs no knowledge of monitoring —
// exactly the property that lets the paper avoid modifying the runtime
// infrastructure for FTL transportation.
//
// Two transports are provided: a framed TCP transport (cross-process, the
// loopback analog of the paper's cross-machine deployments) and an
// in-process transport (distinct logical processes sharing an address
// space, used by the multi-"process" experiment configurations).
package transport

import (
	"errors"
	"fmt"
	"time"
)

// Status classifies a reply.
type Status uint8

// Reply statuses.
const (
	// StatusOK means the invocation completed and the body holds results.
	StatusOK Status = iota + 1
	// StatusUserException means the servant raised a declared exception;
	// the body holds the marshalled exception.
	StatusUserException
	// StatusSystemException means the runtime failed the call (unknown
	// object, bad operation, connection loss); the body holds a message.
	StatusSystemException
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusUserException:
		return "user-exception"
	case StatusSystemException:
		return "system-exception"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Request is one invocation message.
type Request struct {
	// ID correlates the reply on multiplexed connections. The transport
	// assigns it; callers leave it zero.
	ID uint64
	// ObjectKey addresses the target object within the server process.
	ObjectKey string
	// Operation is the method name.
	Operation string
	// Oneway requests fire-and-forget semantics: no reply is sent.
	Oneway bool
	// Body is the CDR-encoded parameter list (plus the hidden FTL when the
	// deployment is instrumented).
	//
	// Ownership: the caller owns Body again the moment Call or Post
	// returns — transports must have copied (or finished transmitting) it
	// by then, never retaining a reference. This is what lets generated
	// stubs recycle their pooled encode buffers immediately after the
	// invocation without racing a transport that is still reading.
	Body []byte
	// Timeout bounds how long Call waits for the reply; zero means wait
	// forever (the pre-deadline behaviour). It is a client-local deadline —
	// it never travels on the wire — so a timed-out request may still
	// execute at the server; the late reply is discarded, not delivered.
	Timeout time.Duration
}

// Reply is one response message.
//
// Ownership: the Body a Call returns belongs to the caller outright (TCP
// decodes it into a fresh copy; inproc hands over the skeleton's buffer).
// Conversely, a Body passed to a Responder is handed off for good — inproc
// forwards it to the waiting caller unchanged — so reply producers must
// never reuse that buffer, which is why skeleton reply encoders are not
// pooled.
type Reply struct {
	ID     uint64
	Status Status
	Body   []byte
}

// Responder sends the reply for one request exactly once.
type Responder func(Reply)

// ConnID identifies a client connection within a server; threading
// policies use it to serialize per-connection dispatch.
type ConnID uint64

// Handler processes one incoming request. Implementations decide their own
// scheduling (the ORB's threading policy) and must eventually call respond
// for non-oneway requests. respond is safe to call from any goroutine.
type Handler func(conn ConnID, req Request, respond Responder)

// Server accepts incoming requests and feeds them to a handler.
type Server interface {
	// Serve starts accepting; it does not block. The handler must be set
	// exactly once before any client connects.
	Serve(h Handler) error
	// Addr returns the endpoint clients dial.
	Addr() string
	// Close stops the server and releases resources.
	Close() error
}

// Client issues requests to one server endpoint.
type Client interface {
	// Call performs a synchronous request and waits for the reply. When
	// req.Timeout is positive the wait is bounded: a call that has not
	// completed by then fails with an error wrapping ErrDeadlineExceeded,
	// its bookkeeping is reclaimed, and a reply arriving afterwards is
	// discarded.
	Call(req Request) (Reply, error)
	// Post sends a oneway request without waiting.
	Post(req Request) error
	// Close releases the connection.
	Close() error
}

// Errors shared by transports.
var (
	// ErrClosed reports use of a closed client or server.
	ErrClosed = errors.New("transport: closed")
	// ErrUnknownEndpoint reports a dial to an unregistered in-process name.
	ErrUnknownEndpoint = errors.New("transport: unknown endpoint")
	// ErrDeadlineExceeded reports a Call abandoned because its Timeout
	// elapsed before the reply arrived. Match with errors.Is.
	ErrDeadlineExceeded = errors.New("transport: deadline exceeded")
)
