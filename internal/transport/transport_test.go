package transport

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

// echoHandler replies with the request body reversed, tagging the op.
func echoHandler(conn ConnID, req Request, respond Responder) {
	body := make([]byte, len(req.Body))
	for i, b := range req.Body {
		body[len(req.Body)-1-i] = b
	}
	respond(Reply{Status: StatusOK, Body: body})
}

func testClientServer(t *testing.T, srv Server, dial func() (Client, error)) {
	t.Helper()
	if err := srv.Serve(echoHandler); err != nil {
		t.Fatal(err)
	}
	c, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rep, err := c.Call(Request{ObjectKey: "obj", Operation: "op", Body: []byte{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != StatusOK || !bytes.Equal(rep.Body, []byte{3, 2, 1}) {
		t.Fatalf("reply = %+v", rep)
	}
}

func TestInprocCallReply(t *testing.T) {
	n := NewInprocNetwork()
	srv, err := n.Listen("serverA")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	testClientServer(t, srv, func() (Client, error) { return n.Dial("serverA") })
}

func TestTCPCallReply(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	testClientServer(t, srv, func() (Client, error) { return DialTCP(srv.Addr()) })
}

func TestInprocUnknownEndpoint(t *testing.T) {
	n := NewInprocNetwork()
	if _, err := n.Dial("missing"); err == nil {
		t.Fatal("dial to unregistered endpoint succeeded")
	}
}

func TestInprocDuplicateBindRejected(t *testing.T) {
	n := NewInprocNetwork()
	if _, err := n.Listen("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("x"); err == nil {
		t.Fatal("duplicate bind accepted")
	}
}

func TestInprocCloseUnbinds(t *testing.T) {
	n := NewInprocNetwork()
	srv, _ := n.Listen("x")
	srv.Close()
	if _, err := n.Listen("x"); err != nil {
		t.Fatalf("rebind after close failed: %v", err)
	}
	c := &inprocClient{server: srv.(*inprocServer)}
	if _, err := c.Call(Request{}); err == nil {
		t.Fatal("call to closed server succeeded")
	}
}

func TestTCPConcurrentCallsMultiplexed(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Handler echoes the body so each caller can verify its own reply.
	if err := srv.Serve(func(conn ConnID, req Request, respond Responder) {
		go respond(Reply{Status: StatusOK, Body: req.Body})
	}); err != nil {
		t.Fatal(err)
	}
	c, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const workers = 16
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := []byte(fmt.Sprintf("payload-%d", i))
			for j := 0; j < 50; j++ {
				rep, err := c.Call(Request{ObjectKey: "o", Operation: "op", Body: body})
				if err != nil {
					t.Errorf("call: %v", err)
					return
				}
				if !bytes.Equal(rep.Body, body) {
					t.Errorf("cross-wired reply: got %q want %q", rep.Body, body)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestTCPOnewayDelivered(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	got := make(chan Request, 1)
	if err := srv.Serve(func(conn ConnID, req Request, respond Responder) {
		got <- req
	}); err != nil {
		t.Fatal(err)
	}
	c, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Post(Request{ObjectKey: "k", Operation: "fire", Body: []byte{9}}); err != nil {
		t.Fatal(err)
	}
	req := <-got
	if !req.Oneway || req.Operation != "fire" || req.Body[0] != 9 {
		t.Fatalf("oneway request = %+v", req)
	}
}

func TestTCPServerCloseUnblocksClients(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	if err := srv.Serve(func(conn ConnID, req Request, respond Responder) {
		<-block // never respond
	}); err != nil {
		t.Fatal(err)
	}
	c, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Call(Request{Operation: "hang"})
		errCh <- err
	}()
	// Let the request land, then tear the server down.
	close(block)
	srv.Close()
	if err := <-errCh; err == nil {
		// The handler may have responded before close: acceptable only if
		// it responded StatusOK with empty body — but our handler never
		// responds, so any nil error is a bug.
		t.Fatal("call returned nil error after server close without reply")
	}
}

func TestClientCloseRejectsFurtherUse(t *testing.T) {
	n := NewInprocNetwork()
	srv, _ := n.Listen("s")
	if err := srv.Serve(echoHandler); err != nil {
		t.Fatal(err)
	}
	c, _ := n.Dial("s")
	c.Close()
	if _, err := c.Call(Request{}); err != ErrClosed {
		t.Fatalf("Call after close: %v", err)
	}
	if err := c.Post(Request{}); err != ErrClosed {
		t.Fatalf("Post after close: %v", err)
	}
}

func TestFrameCodecRoundTrip(t *testing.T) {
	fn := func(id uint64, oneway bool, key, op string, body []byte) bool {
		req := Request{ID: id, Oneway: oneway, ObjectKey: key, Operation: op, Body: body}
		enc := encodeRequest(req)
		fr := &frameReader{buf: enc}
		kind, err := fr.u8()
		if err != nil || kind != frameRequest {
			return false
		}
		dec, err := decodeRequest(fr, nil)
		if err != nil {
			return false
		}
		if dec.Body == nil {
			dec.Body = []byte{}
		}
		if req.Body == nil {
			req.Body = []byte{}
		}
		return dec.ID == req.ID && dec.Oneway == req.Oneway &&
			dec.ObjectKey == req.ObjectKey && dec.Operation == req.Operation &&
			bytes.Equal(dec.Body, req.Body)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestReplyCodecRoundTrip(t *testing.T) {
	fn := func(id uint64, st uint8, body []byte) bool {
		rep := Reply{ID: id, Status: Status(st), Body: body}
		enc := encodeReply(rep)
		fr := &frameReader{buf: enc}
		kind, err := fr.u8()
		if err != nil || kind != frameReply {
			return false
		}
		dec, err := decodeReply(fr)
		if err != nil {
			return false
		}
		return dec.ID == rep.ID && dec.Status == rep.Status && bytes.Equal(dec.Body, rep.Body)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestTruncatedFrameRejected(t *testing.T) {
	req := Request{ID: 1, ObjectKey: "k", Operation: "op", Body: []byte{1, 2}}
	enc := encodeRequest(req)
	for cut := 1; cut < len(enc); cut++ {
		fr := &frameReader{buf: enc[:cut]}
		if kind, err := fr.u8(); err != nil {
			continue
		} else if kind != frameRequest {
			t.Fatalf("cut %d: wrong kind", cut)
		}
		if _, err := decodeRequest(fr, nil); err == nil {
			t.Fatalf("truncated frame at %d bytes decoded successfully", cut)
		}
	}
}

func TestStatusString(t *testing.T) {
	for st, want := range map[Status]string{
		StatusOK: "ok", StatusUserException: "user-exception",
		StatusSystemException: "system-exception", Status(99): "status(99)",
	} {
		if got := st.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", st, got, want)
		}
	}
}

func BenchmarkInprocRoundTrip(b *testing.B) {
	n := NewInprocNetwork()
	srv, _ := n.Listen("bench")
	if err := srv.Serve(func(conn ConnID, req Request, respond Responder) {
		respond(Reply{Status: StatusOK, Body: req.Body})
	}); err != nil {
		b.Fatal(err)
	}
	c, _ := n.Dial("bench")
	body := []byte("0123456789abcdef")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(Request{ObjectKey: "o", Operation: "op", Body: body}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCPRoundTrip(b *testing.B) {
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Serve(func(conn ConnID, req Request, respond Responder) {
		respond(Reply{Status: StatusOK, Body: req.Body})
	}); err != nil {
		b.Fatal(err)
	}
	c, err := DialTCP(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	body := []byte("0123456789abcdef")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(Request{ObjectKey: "o", Operation: "op", Body: body}); err != nil {
			b.Fatal(err)
		}
	}
}
