package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"causeway/internal/gls"
	"causeway/internal/metrics"
)

// Frame layout: every message is a length-prefixed frame.
//
//	u32  frame length (excluding this prefix)
//	u8   frame kind (request | reply)
//	u64  request id
//	-- request --          -- reply --
//	u8   oneway            u8   status
//	str  object key        bytes body
//	str  operation
//	bytes body
//
// Strings and byte fields are u32-length-prefixed.
const (
	frameRequest byte = 1
	frameReply   byte = 2

	// maxFrame bounds a frame to keep a corrupt length prefix from
	// allocating unbounded memory.
	maxFrame = 64 << 20
)

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	return readFrameInto(r, nil)
}

// readFrameInto reads one frame, reusing buf's capacity when it suffices.
// The result aliases buf (or a replacement that should be kept for the next
// call); it is valid only until the next readFrameInto on the same buffer.
func readFrameInto(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	if cap(buf) < n {
		buf = make([]byte, n, max(n, 512))
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// maxPooledFrameCap clamps what the frame pool retains, so one huge message
// does not pin its buffer for the life of the process.
const maxPooledFrameCap = 64 << 10

// framePool recycles read/write frame buffers across connections. Within a
// connection the same buffer is reused call after call (the read loop and
// the write mutex each own one), so steady state does no pool traffic at
// all; the pool only matters when connections churn.
var framePool = sync.Pool{
	New: func() any {
		poolCounters.frameNews.Add(1)
		b := make([]byte, 0, 512)
		return &b
	},
}

// poolCounters observes the package's pools: gets vs news yields the hit
// rate (a "new" is a pool miss). Process-global because the pools are.
var poolCounters struct {
	frameGets, frameNews atomic.Uint64
	replyGets, replyNews atomic.Uint64
}

// PoolStats is a point-in-time snapshot of the pool counters.
type PoolStats struct {
	FrameGets, FrameMisses uint64 // frame buffer pool
	ReplyGets, ReplyMisses uint64 // reply channel pool
}

// ReadPoolStats snapshots the pool counters.
func ReadPoolStats() PoolStats {
	return PoolStats{
		FrameGets:   poolCounters.frameGets.Load(),
		FrameMisses: poolCounters.frameNews.Load(),
		ReplyGets:   poolCounters.replyGets.Load(),
		ReplyMisses: poolCounters.replyNews.Load(),
	}
}

// WritePoolMetrics renders the pool counters as exposition series — the
// source form metrics.Registry.RegisterSource consumes.
func WritePoolMetrics(w io.Writer) {
	st := ReadPoolStats()
	fmt.Fprintf(w, "causeway_pool_frame_gets_total %d\n", st.FrameGets)
	fmt.Fprintf(w, "causeway_pool_frame_misses_total %d\n", st.FrameMisses)
	fmt.Fprintf(w, "causeway_pool_reply_ch_gets_total %d\n", st.ReplyGets)
	fmt.Fprintf(w, "causeway_pool_reply_ch_misses_total %d\n", st.ReplyMisses)
}

func getFrameBuf() *[]byte {
	poolCounters.frameGets.Add(1)
	return framePool.Get().(*[]byte)
}

func putFrameBuf(p *[]byte) {
	if p == nil || cap(*p) > maxPooledFrameCap {
		return
	}
	*p = (*p)[:0]
	framePool.Put(p)
}

func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func appendBytes(b, v []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(v)))
	return append(b, v...)
}

type frameReader struct {
	buf []byte
	off int
}

func (f *frameReader) u8() (byte, error) {
	if f.off+1 > len(f.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	v := f.buf[f.off]
	f.off++
	return v, nil
}

func (f *frameReader) u64() (uint64, error) {
	if f.off+8 > len(f.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.LittleEndian.Uint64(f.buf[f.off:])
	f.off += 8
	return v, nil
}

func (f *frameReader) bytes() ([]byte, error) {
	if f.off+4 > len(f.buf) {
		return nil, io.ErrUnexpectedEOF
	}
	n := binary.LittleEndian.Uint32(f.buf[f.off:])
	f.off += 4
	if f.off+int(n) > len(f.buf) {
		return nil, io.ErrUnexpectedEOF
	}
	v := f.buf[f.off : f.off+int(n)]
	f.off += int(n)
	return v, nil
}

func (f *frameReader) str() (string, error) {
	b, err := f.bytes()
	return string(b), err
}

// internedStr is str deduplicated through m (nil m falls back to str).
// Interned strings are bounded by maxInternedStrings per table; past that
// the table stops growing and unseen strings are allocated normally, so a
// client sending adversarially unique operation names cannot exhaust
// memory.
func (f *frameReader) internedStr(m map[string]string) (string, error) {
	b, err := f.bytes()
	if err != nil {
		return "", err
	}
	if m == nil {
		return string(b), nil
	}
	if s, ok := m[string(b)]; ok {
		return s, nil
	}
	s := string(b)
	if len(m) < maxInternedStrings {
		m[s] = s
	}
	return s, nil
}

// maxInternedStrings bounds a connection's intern table.
const maxInternedStrings = 1024

func encodeRequest(req Request) []byte {
	b := make([]byte, 0, 32+len(req.ObjectKey)+len(req.Operation)+len(req.Body))
	b = append(b, frameRequest)
	b = binary.LittleEndian.AppendUint64(b, req.ID)
	if req.Oneway {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendString(b, req.ObjectKey)
	b = appendString(b, req.Operation)
	b = appendBytes(b, req.Body)
	return b
}

func encodeReply(rep Reply) []byte {
	b := make([]byte, 0, 16+len(rep.Body))
	b = append(b, frameReply)
	b = binary.LittleEndian.AppendUint64(b, rep.ID)
	b = append(b, byte(rep.Status))
	b = appendBytes(b, rep.Body)
	return b
}

// appendRequestFrame assembles the length prefix and the request payload
// into one buffer, so the whole message goes to the kernel in a single
// Write — two small writes per call double the syscall count and, with
// Nagle disabled, can double the packet count too.
func appendRequestFrame(dst []byte, req Request) []byte {
	dst = append(dst, 0, 0, 0, 0)
	start := len(dst)
	dst = append(dst, frameRequest)
	dst = binary.LittleEndian.AppendUint64(dst, req.ID)
	if req.Oneway {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = appendString(dst, req.ObjectKey)
	dst = appendString(dst, req.Operation)
	dst = appendBytes(dst, req.Body)
	binary.LittleEndian.PutUint32(dst[start-4:start], uint32(len(dst)-start))
	return dst
}

// appendReplyFrame is appendRequestFrame for replies.
func appendReplyFrame(dst []byte, rep Reply) []byte {
	dst = append(dst, 0, 0, 0, 0)
	start := len(dst)
	dst = append(dst, frameReply)
	dst = binary.LittleEndian.AppendUint64(dst, rep.ID)
	dst = append(dst, byte(rep.Status))
	dst = appendBytes(dst, rep.Body)
	binary.LittleEndian.PutUint32(dst[start-4:start], uint32(len(dst)-start))
	return dst
}

// decodeRequest parses a request. interned, when non-nil, is a
// per-connection table that deduplicates ObjectKey/Operation strings: a
// connection invokes the same few operations over and over, and the
// m[string(b)] lookup form is recognized by the compiler as allocation-free,
// so after the first call of each kind no string is allocated per request.
// The body is copied (dispatch may outlive the read buffer's next reuse).
func decodeRequest(fr *frameReader, interned map[string]string) (Request, error) {
	var req Request
	var err error
	if req.ID, err = fr.u64(); err != nil {
		return req, err
	}
	ow, err := fr.u8()
	if err != nil {
		return req, err
	}
	req.Oneway = ow != 0
	if req.ObjectKey, err = fr.internedStr(interned); err != nil {
		return req, err
	}
	if req.Operation, err = fr.internedStr(interned); err != nil {
		return req, err
	}
	body, err := fr.bytes()
	if err != nil {
		return req, err
	}
	req.Body = append([]byte(nil), body...)
	return req, nil
}

func decodeReply(fr *frameReader) (Reply, error) {
	var rep Reply
	var err error
	if rep.ID, err = fr.u64(); err != nil {
		return rep, err
	}
	st, err := fr.u8()
	if err != nil {
		return rep, err
	}
	rep.Status = Status(st)
	body, err := fr.bytes()
	if err != nil {
		return rep, err
	}
	rep.Body = append([]byte(nil), body...)
	return rep, nil
}

// DecodeReplyFrame parses a raw frame payload (as framed by writeFrame,
// without the length prefix) as a reply, validating it strictly: a frame
// whose length was plausible but whose payload is not a well-formed reply
// for a real request is rejected with a specific transport: error rather
// than a generic decode failure. Request IDs start at 1, so a reply
// claiming ID 0 can only come from corruption.
func DecodeReplyFrame(frame []byte) (Reply, error) {
	fr := &frameReader{buf: frame}
	kind, err := fr.u8()
	if err != nil {
		return Reply{}, errors.New("transport: empty frame")
	}
	if kind != frameReply {
		return Reply{}, fmt.Errorf("transport: unknown frame kind 0x%02x (want reply 0x%02x)", kind, frameReply)
	}
	rep, err := decodeReply(fr)
	if err != nil {
		return Reply{}, fmt.Errorf("transport: malformed reply frame: %v", err)
	}
	if rep.ID == 0 {
		return Reply{}, errors.New("transport: reply for request id 0 (request ids start at 1)")
	}
	return rep, nil
}

// EncodeReplyFrame renders rep as a frame payload, the inverse of
// DecodeReplyFrame. Exported for fault injectors and codec tests that need
// to synthesize wire bytes.
func EncodeReplyFrame(rep Reply) []byte { return encodeReply(rep) }

// TCPServer serves requests over TCP. One read goroutine per connection
// delivers requests to the handler; the handler's scheduling policy decides
// which goroutine executes the dispatch.
type TCPServer struct {
	ln      net.Listener
	mu      sync.Mutex
	handler Handler
	conns   map[net.Conn]struct{}
	wg      sync.WaitGroup
	closed  atomic.Bool
	nextID  atomic.Uint64
	net     *metrics.NetStats // nil when unmetered; set before Serve
}

var _ Server = (*TCPServer)(nil)

// ListenTCP binds addr ("127.0.0.1:0" for an ephemeral port).
func ListenTCP(addr string) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &TCPServer{ln: ln, conns: make(map[net.Conn]struct{})}, nil
}

// SetMetrics attaches wire-traffic counters. It must be called before
// Serve — connection loops read the field without synchronization.
func (s *TCPServer) SetMetrics(ns *metrics.NetStats) { s.net = ns }

// Serve implements Server; it starts the accept loop and returns.
func (s *TCPServer) Serve(h Handler) error {
	s.mu.Lock()
	if s.handler != nil {
		s.mu.Unlock()
		return errors.New("transport: already serving")
	}
	s.handler = h
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr implements Server.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// Close implements Server: stops accepting, closes live connections, and
// waits for per-connection goroutines to finish.
func (s *TCPServer) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	err := s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.connLoop(conn, ConnID(s.nextID.Add(1)))
	}
}

func (s *TCPServer) connLoop(conn net.Conn, id ConnID) {
	defer s.wg.Done()
	// The connection reader owns its goroutine for the connection's
	// lifetime: pre-register so any identity resolution on this goroutine
	// (oneway fast paths, inline delivery) is constant-time.
	gls.Register()
	defer gls.Unregister()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	var writeMu sync.Mutex
	// One read buffer and one write buffer per connection, reused for every
	// message on the connection. The read buffer comes from the frame pool
	// and is safe to reuse across requests because decodeRequest copies the
	// body out. The write buffer is guarded by writeMu but deliberately NOT
	// pooled: respond closures can outlive connLoop (a dispatch may finish
	// after the connection died), so returning it at loop exit could hand a
	// buffer to the pool while a late responder still writes into it.
	readBuf := getFrameBuf()
	defer putFrameBuf(readBuf)
	var writeBuf []byte
	interned := make(map[string]string, 8)
	for {
		frame, err := readFrameInto(conn, *readBuf)
		if err != nil {
			return
		}
		if s.net != nil {
			s.net.FramesRecv.Add(1)
			s.net.BytesRecv.Add(uint64(len(frame)) + 4)
		}
		*readBuf = frame[:0]
		fr := &frameReader{buf: frame}
		kind, err := fr.u8()
		if err != nil || kind != frameRequest {
			return
		}
		req, err := decodeRequest(fr, interned)
		if err != nil {
			return
		}
		respond := Responder(func(Reply) {})
		if !req.Oneway {
			reqID := req.ID
			respond = func(rep Reply) {
				rep.ID = reqID
				writeMu.Lock()
				defer writeMu.Unlock()
				out := appendReplyFrame(writeBuf[:0], rep)
				if cap(out) <= maxPooledFrameCap {
					writeBuf = out[:0]
				}
				// A write error means the client went away; the reply is
				// undeliverable and dropping it is the only option.
				if s.net != nil {
					s.net.FramesSent.Add(1)
					s.net.BytesSent.Add(uint64(len(out)))
				}
				_, _ = conn.Write(out)
			}
		}
		s.mu.Lock()
		h := s.handler
		s.mu.Unlock()
		h(id, req, respond)
	}
}

// TCPClient multiplexes synchronous calls over one TCP connection.
//
// Lifecycle invariants (the Call/Close/readLoop interleaving audit):
//
//   - readLoop is the only goroutine that delivers replies; it removes the
//     pending entry under mu before sending on the (buffered, capacity-1)
//     channel, so a sender never blocks and at most one reply reaches a
//     given entry.
//   - Failure teardown (connection error, strict-decode error, Close) sets
//     readErr and closes every pending channel under the same mu that Call
//     uses to register, so a Call either observes readErr before
//     registering and fails fast, or registers first and is guaranteed to
//     be woken by the teardown's close. No interleaving strands a waiter.
//   - Call re-checks closed under mu at registration time: Close flips
//     closed before closing the socket, so without the re-check a Call
//     racing Close could register, win the writeFrame race against the
//     socket teardown, and only fail when readLoop collapses — correct but
//     noisy. The re-check turns that window into a clean ErrClosed.
type TCPClient struct {
	conn      net.Conn
	writeMu   sync.Mutex
	writeBuf  []byte // frame assembly buffer, guarded by writeMu
	mu        sync.Mutex
	pending   map[uint64]chan Reply
	nextID    atomic.Uint64
	closed    atomic.Bool
	discarded atomic.Uint64
	readErr   error
	done      chan struct{}
	net       *metrics.NetStats // nil when unmetered; fixed at dial
}

// replyChPool recycles the per-call reply channels. Only channels that are
// provably unreachable by any sender or teardown go back: a channel closed
// by failPending must never be pooled (a pooled closed channel would wake
// an unrelated future call with a phantom terminal error).
var replyChPool = sync.Pool{
	New: func() any {
		poolCounters.replyNews.Add(1)
		return make(chan Reply, 1)
	},
}

// getReplyCh is replyChPool.Get with the pool-hit accounting applied.
func getReplyCh() chan Reply {
	poolCounters.replyGets.Add(1)
	return replyChPool.Get().(chan Reply)
}

// writeRequestLocked assembles req into the client's reusable buffer and
// writes it as one frame in a single Write call.
func (c *TCPClient) writeRequest(req Request) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	out := appendRequestFrame(c.writeBuf[:0], req)
	if cap(out) <= maxPooledFrameCap {
		c.writeBuf = out[:0]
	}
	if c.net != nil {
		c.net.FramesSent.Add(1)
		c.net.BytesSent.Add(uint64(len(out)))
	}
	_, err := c.conn.Write(out)
	return err
}

var _ Client = (*TCPClient)(nil)

// DialTCP connects to a TCPServer.
func DialTCP(addr string) (*TCPClient, error) { return DialTCPMetered(addr, nil) }

// DialTCPMetered is DialTCP with wire-traffic counters attached. The
// counters must be supplied at dial time: the read loop starts
// immediately and reads the field without synchronization.
func DialTCPMetered(addr string, ns *metrics.NetStats) (*TCPClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	c := &TCPClient{
		conn:    conn,
		pending: make(map[uint64]chan Reply),
		done:    make(chan struct{}),
		net:     ns,
	}
	go c.readLoop()
	return c, nil
}

// failPending records err as the connection's terminal state and wakes
// every registered caller by closing its channel.
func (c *TCPClient) failPending(err error) {
	c.mu.Lock()
	if c.readErr == nil {
		c.readErr = err
	}
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
	c.mu.Unlock()
}

func (c *TCPClient) readLoop() {
	defer close(c.done)
	// Long-lived reply reader: register once at birth (see gls.Register).
	gls.Register()
	defer gls.Unregister()
	// One pooled buffer reused for every reply frame; DecodeReplyFrame
	// copies the body out, so the next read may overwrite it.
	readBuf := getFrameBuf()
	defer putFrameBuf(readBuf)
	for {
		frame, err := readFrameInto(c.conn, *readBuf)
		if err != nil {
			c.failPending(err)
			return
		}
		if c.net != nil {
			c.net.FramesRecv.Add(1)
			c.net.BytesRecv.Add(uint64(len(frame)) + 4)
		}
		*readBuf = frame[:0]
		rep, err := DecodeReplyFrame(frame)
		if err != nil {
			// A frame that framed correctly but does not decode to a valid
			// reply means the stream is corrupt or the peer speaks another
			// protocol; resynchronizing is impossible, so the connection is
			// fatal. Every waiter sees the specific decode error.
			c.conn.Close()
			c.failPending(err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[rep.ID]
		if ok {
			delete(c.pending, rep.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- rep
		} else {
			// Reply for an ID nobody is waiting on: the call was abandoned
			// (deadline) or this is a duplicate. Discard, never deliver.
			c.discarded.Add(1)
			if c.net != nil {
				c.net.LateReplies.Add(1)
			}
		}
	}
}

// Pending reports how many calls are registered awaiting replies. Tests
// use it to assert that abandoned calls reclaim their map entries.
func (c *TCPClient) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Discarded reports how many replies arrived for IDs no caller was waiting
// on — late replies to abandoned (timed-out) calls and duplicates.
func (c *TCPClient) Discarded() uint64 { return c.discarded.Load() }

// Call implements Client.
func (c *TCPClient) Call(req Request) (Reply, error) {
	if c.closed.Load() {
		return Reply{}, ErrClosed
	}
	req.ID = c.nextID.Add(1)
	req.Oneway = false
	ch := getReplyCh()
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return Reply{}, err
	}
	if c.closed.Load() {
		// Close won the race since the fast check above; registering now
		// would still be woken by teardown, but fail cleanly instead.
		c.mu.Unlock()
		return Reply{}, ErrClosed
	}
	c.pending[req.ID] = ch
	c.mu.Unlock()

	if err := c.writeRequest(req); err != nil {
		c.mu.Lock()
		_, mine := c.pending[req.ID]
		delete(c.pending, req.ID)
		c.mu.Unlock()
		if mine {
			// The entry was still ours, so no sender ever touched ch and
			// teardown can no longer close it: safe to recycle.
			replyChPool.Put(ch)
		}
		return Reply{}, err
	}

	if req.Timeout <= 0 {
		rep, ok := <-ch
		if !ok {
			return Reply{}, c.terminalErr()
		}
		replyChPool.Put(ch)
		return rep, nil
	}

	timer := time.NewTimer(req.Timeout)
	defer timer.Stop()
	select {
	case rep, ok := <-ch:
		if !ok {
			return Reply{}, c.terminalErr()
		}
		replyChPool.Put(ch)
		return rep, nil
	case <-timer.C:
		c.mu.Lock()
		if _, registered := c.pending[req.ID]; registered {
			// Nobody has touched the entry: reclaim it. A reply arriving
			// later finds no waiter and is counted in Discarded. With the
			// entry gone no sender or teardown can reach ch, so recycle it.
			delete(c.pending, req.ID)
			c.mu.Unlock()
			replyChPool.Put(ch)
			return Reply{}, fmt.Errorf("transport: call %s: %w after %v", req.Operation, ErrDeadlineExceeded, req.Timeout)
		}
		c.mu.Unlock()
		// readLoop removed the entry concurrently with the timer firing:
		// either the reply beat the deadline at the wire (buffered send is
		// imminent or done — deliver it) or teardown closed the channel.
		rep, ok := <-ch
		if !ok {
			return Reply{}, c.terminalErr()
		}
		replyChPool.Put(ch)
		return rep, nil
	}
}

// terminalErr reports why the connection collapsed, for a caller whose
// pending channel was closed by teardown.
func (c *TCPClient) terminalErr() error {
	c.mu.Lock()
	err := c.readErr
	c.mu.Unlock()
	if err == nil {
		err = ErrClosed
	}
	return err
}

// Post implements Client.
func (c *TCPClient) Post(req Request) error {
	if c.closed.Load() {
		return ErrClosed
	}
	req.ID = c.nextID.Add(1)
	req.Oneway = true
	return c.writeRequest(req)
}

// Close implements Client.
func (c *TCPClient) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	err := c.conn.Close()
	<-c.done
	return err
}
