package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// InprocNetwork is a namespace of in-process endpoints. Multiple logical
// processes in one binary register servers by name; clients dial by name.
// It models the paper's single-machine multi-process configurations without
// kernel sockets, keeping experiment noise low.
type InprocNetwork struct {
	mu      sync.Mutex
	servers map[string]*inprocServer
	nextID  atomic.Uint64
}

// NewInprocNetwork returns an empty namespace.
func NewInprocNetwork() *InprocNetwork {
	return &InprocNetwork{servers: make(map[string]*inprocServer)}
}

// Listen registers a named endpoint.
func (n *InprocNetwork) Listen(name string) (Server, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.servers[name]; exists {
		return nil, fmt.Errorf("transport: inproc endpoint %q already bound", name)
	}
	s := &inprocServer{net: n, name: name}
	n.servers[name] = s
	return s, nil
}

// Dial connects to a named endpoint.
func (n *InprocNetwork) Dial(name string) (Client, error) {
	n.mu.Lock()
	s, ok := n.servers[name]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownEndpoint, name)
	}
	return &inprocClient{server: s, conn: ConnID(n.nextID.Add(1))}, nil
}

type inprocServer struct {
	net  *InprocNetwork
	name string

	mu      sync.RWMutex
	handler Handler
	closed  bool
}

var _ Server = (*inprocServer)(nil)

func (s *inprocServer) Serve(h Handler) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.handler != nil {
		return fmt.Errorf("transport: inproc endpoint %q already serving", s.name)
	}
	s.handler = h
	return nil
}

func (s *inprocServer) Addr() string { return "inproc://" + s.name }

func (s *inprocServer) Close() error {
	s.mu.Lock()
	s.closed = true
	s.handler = nil
	s.mu.Unlock()
	s.net.mu.Lock()
	delete(s.net.servers, s.name)
	s.net.mu.Unlock()
	return nil
}

func (s *inprocServer) deliver(conn ConnID, req Request, respond Responder) error {
	s.mu.RLock()
	h := s.handler
	closed := s.closed
	s.mu.RUnlock()
	if closed || h == nil {
		return ErrClosed
	}
	h(conn, req, respond)
	return nil
}

type inprocClient struct {
	server *inprocServer
	conn   ConnID
	nextID atomic.Uint64
	closed atomic.Bool
}

var _ Client = (*inprocClient)(nil)

func (c *inprocClient) Call(req Request) (Reply, error) {
	if c.closed.Load() {
		return Reply{}, ErrClosed
	}
	req.ID = c.nextID.Add(1)
	req.Oneway = false
	ch := make(chan Reply, 1)
	err := c.server.deliver(c.conn, req, func(r Reply) { ch <- r })
	if err != nil {
		return Reply{}, err
	}
	return <-ch, nil
}

func (c *inprocClient) Post(req Request) error {
	if c.closed.Load() {
		return ErrClosed
	}
	req.ID = c.nextID.Add(1)
	req.Oneway = true
	return c.server.deliver(c.conn, req, func(Reply) {})
}

func (c *inprocClient) Close() error {
	c.closed.Store(true)
	return nil
}
