package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// InprocNetwork is a namespace of in-process endpoints. Multiple logical
// processes in one binary register servers by name; clients dial by name.
// It models the paper's single-machine multi-process configurations without
// kernel sockets, keeping experiment noise low.
type InprocNetwork struct {
	mu      sync.Mutex
	servers map[string]*inprocServer
	nextID  atomic.Uint64
}

// NewInprocNetwork returns an empty namespace.
func NewInprocNetwork() *InprocNetwork {
	return &InprocNetwork{servers: make(map[string]*inprocServer)}
}

// Listen registers a named endpoint.
func (n *InprocNetwork) Listen(name string) (Server, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.servers[name]; exists {
		return nil, fmt.Errorf("transport: inproc endpoint %q already bound", name)
	}
	s := &inprocServer{net: n, name: name}
	n.servers[name] = s
	return s, nil
}

// Dial connects to a named endpoint.
func (n *InprocNetwork) Dial(name string) (Client, error) {
	n.mu.Lock()
	s, ok := n.servers[name]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownEndpoint, name)
	}
	return &inprocClient{server: s, conn: ConnID(n.nextID.Add(1))}, nil
}

type inprocServer struct {
	net  *InprocNetwork
	name string

	mu      sync.RWMutex
	handler Handler
	closed  bool
}

var _ Server = (*inprocServer)(nil)

func (s *inprocServer) Serve(h Handler) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.handler != nil {
		return fmt.Errorf("transport: inproc endpoint %q already serving", s.name)
	}
	s.handler = h
	return nil
}

func (s *inprocServer) Addr() string { return "inproc://" + s.name }

func (s *inprocServer) Close() error {
	s.mu.Lock()
	s.closed = true
	s.handler = nil
	s.mu.Unlock()
	s.net.mu.Lock()
	delete(s.net.servers, s.name)
	s.net.mu.Unlock()
	return nil
}

func (s *inprocServer) deliver(conn ConnID, req Request, respond Responder) error {
	s.mu.RLock()
	h := s.handler
	closed := s.closed
	s.mu.RUnlock()
	if closed || h == nil {
		return ErrClosed
	}
	h(conn, req, respond)
	return nil
}

type inprocClient struct {
	server    *inprocServer
	conn      ConnID
	nextID    atomic.Uint64
	closed    atomic.Bool
	discarded atomic.Uint64
}

var _ Client = (*inprocClient)(nil)

func (c *inprocClient) Call(req Request) (Reply, error) {
	if c.closed.Load() {
		return Reply{}, ErrClosed
	}
	req.ID = c.nextID.Add(1)
	req.Oneway = false
	ch := make(chan Reply, 1)
	if req.Timeout <= 0 {
		err := c.server.deliver(c.conn, req, func(r Reply) { ch <- r })
		if err != nil {
			return Reply{}, err
		}
		return <-ch, nil
	}

	// Deadline-bounded: the handler may block indefinitely (that is the
	// failure mode deadlines exist for), so deliver runs on its own
	// goroutine. abandoned marks the call so a reply produced after the
	// deadline is discarded, never delivered; the buffered send keeps a
	// late responder from leaking a goroutine.
	//
	// Because Call may return at the deadline while the dispatch is still
	// unmarshalling, the body must be copied: the caller owns (and may
	// recycle) its buffer the moment Call returns.
	if len(req.Body) != 0 {
		req.Body = append([]byte(nil), req.Body...)
	}
	var abandoned atomic.Bool
	respond := func(r Reply) {
		if abandoned.Load() {
			c.discarded.Add(1)
			return
		}
		select {
		case ch <- r:
		default:
			c.discarded.Add(1) // duplicate reply
		}
	}
	done := make(chan struct{})
	var derr error
	go func() {
		derr = c.server.deliver(c.conn, req, respond)
		close(done)
	}()
	timer := time.NewTimer(req.Timeout)
	defer timer.Stop()
	for {
		select {
		case rep := <-ch:
			return rep, nil
		case <-done:
			if derr != nil {
				return Reply{}, derr
			}
			// Dispatch completed; with an asynchronous threading policy the
			// reply may still be in flight, so keep waiting on ch/timer.
			done = nil
		case <-timer.C:
			abandoned.Store(true)
			// The responder may have won the race into the buffered channel
			// just before abandoned flipped; honor that reply.
			select {
			case rep := <-ch:
				return rep, nil
			default:
			}
			return Reply{}, fmt.Errorf("transport: call %s: %w after %v", req.Operation, ErrDeadlineExceeded, req.Timeout)
		}
	}
}

// Discarded reports replies dropped because their call was abandoned at
// the deadline (or was a duplicate).
func (c *inprocClient) Discarded() uint64 { return c.discarded.Load() }

func (c *inprocClient) Post(req Request) error {
	if c.closed.Load() {
		return ErrClosed
	}
	req.ID = c.nextID.Add(1)
	req.Oneway = true
	// Oneway dispatch is asynchronous under every threading policy, so the
	// body is copied: the caller owns its buffer the moment Post returns.
	if len(req.Body) != 0 {
		req.Body = append([]byte(nil), req.Body...)
	}
	return c.server.deliver(c.conn, req, func(Reply) {})
}

func (c *inprocClient) Close() error {
	c.closed.Store(true)
	return nil
}
