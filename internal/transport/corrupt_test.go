// Corrupt-frame handling, tested from outside the package so the
// faultinject corrupter can be reused without an import cycle
// (faultinject wraps transport's Client/Handler types).
package transport_test

import (
	"strings"
	"testing"

	"causeway/internal/faultinject"
	"causeway/internal/transport"
)

// TestDecodeReplyFrameRejectsCorruption feeds DecodeReplyFrame both
// hand-built corruptions and injector-generated ones, asserting each
// class is rejected with its specific transport:-prefixed error rather
// than a generic decode failure.
func TestDecodeReplyFrameRejectsCorruption(t *testing.T) {
	valid := transport.EncodeReplyFrame(transport.Reply{
		ID: 7, Status: transport.StatusOK, Body: []byte("payload"),
	})

	flipKind := append([]byte(nil), valid...)
	flipKind[0] ^= 0x7f
	zeroID := append([]byte(nil), valid...)
	for i := 1; i < 9; i++ {
		zeroID[i] = 0
	}

	cases := []struct {
		name  string
		frame []byte
		want  string
	}{
		{"empty frame", nil, "empty frame"},
		{"unknown kind byte", flipKind, "unknown frame kind"},
		{"request id zero", zeroID, "request id 0"},
		{"truncated after kind", valid[:1], "malformed reply"},
		{"truncated mid-id", valid[:5], "malformed reply"},
		{"truncated mid-body", valid[:len(valid)-3], "malformed reply"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := transport.DecodeReplyFrame(tc.frame)
			if err == nil {
				t.Fatal("corrupt frame decoded successfully")
			}
			if !strings.HasPrefix(err.Error(), "transport:") {
				t.Fatalf("err = %v, want transport: prefix", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}

	// The faultinject corrupter generates the same three classes from its
	// seeded stream; every variant must be rejected the same way.
	in := faultinject.New(faultinject.Plan{Seed: 1234})
	for i := 0; i < 64; i++ {
		frame := in.CorruptFrame(valid)
		_, err := transport.DecodeReplyFrame(frame)
		if err == nil {
			t.Fatalf("injector variant %d (% x) decoded successfully", i, frame)
		}
		if !strings.HasPrefix(err.Error(), "transport:") {
			t.Fatalf("injector variant %d: err = %v, want transport: prefix", i, err)
		}
	}
}
