package idlgen

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"causeway/internal/idl"
)

const sampleIDL = `
module Example {
    struct JobInfo {
        long id;
        string name;
        sequence<octet> payload;
        sequence<sequence<long>> matrix;
    };

    exception PrinterJam {
        string location;
        long tray;
    };

    interface Foo {
        void funcA(in long x);
        string funcB(in float y);
        long long big(in unsigned long a, in unsigned short b, inout double d, out boolean ok);
        JobInfo submit(in JobInfo job, in sequence<long> pages) raises (PrinterJam);
        oneway void poke(in string msg);
        void nop();
    };
};
`

func generate(t *testing.T, instrument bool) string {
	t.Helper()
	spec, err := idl.Parse(sampleIDL)
	if err != nil {
		t.Fatal(err)
	}
	code, err := Generate(spec, Options{Package: "genpkg", Instrument: instrument, Source: "sample.idl"})
	if err != nil {
		t.Fatal(err)
	}
	return string(code)
}

// TestGeneratedCodeParses ensures both modes emit syntactically valid,
// gofmt-clean Go.
func TestGeneratedCodeParses(t *testing.T) {
	for _, instrument := range []bool{false, true} {
		code := generate(t, instrument)
		fset := token.NewFileSet()
		if _, err := parser.ParseFile(fset, "gen.go", code, 0); err != nil {
			t.Fatalf("instrument=%v: generated code does not parse: %v\n%s", instrument, err, code)
		}
	}
}

func TestGeneratedSymbols(t *testing.T) {
	code := generate(t, true)
	for _, want := range []string{
		"type JobInfo struct",
		"func MarshalJobInfo(",
		"func UnmarshalJobInfo(",
		"type PrinterJam struct",
		"func (e *PrinterJam) Error() string",
		"type Foo interface",
		"type FooStub struct",
		"func NewFooStub(",
		"func DispatchFoo(",
		"func RegisterFoo(",
		"FuncA(x int32) error",
		"FuncB(y float32) (string, error)",
		"Big(a uint32, b uint16, d float64) (int64, float64, bool, error)",
		"Submit(job JobInfo, pages []int32) (JobInfo, error)",
		"Poke(msg string) error",
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
}

// TestInstrumentationFlagGovernsProbes: the plain output must contain no
// monitoring references; the instrumented output must carry all four
// probe calls and the hidden FTL handling.
func TestInstrumentationFlagGovernsProbes(t *testing.T) {
	plain := generate(t, false)
	instr := generate(t, true)

	for _, forbidden := range []string{"StubStart", "SkelStart", "AppendFTL", "TakeFTL", "probe.", "ftl."} {
		if strings.Contains(plain, forbidden) {
			t.Errorf("plain output contains %q", forbidden)
		}
	}
	for _, required := range []string{
		"StubStart", "StubEnd", "SkelStart", "SkelEnd",
		"CollocStart", "CollocEnd", "AppendFTL", "TakeFTL",
	} {
		if !strings.Contains(instr, required) {
			t.Errorf("instrumented output missing %q", required)
		}
	}
}

// TestFigure3HiddenParam: the instrumented skeleton strips the FTL before
// decoding declared parameters and the stub appends it after them — the
// in-out parameter insertion of Figure 3.
func TestFigure3HiddenParam(t *testing.T) {
	instr := generate(t, true)
	if !strings.Contains(instr, "_body = orb.AppendFTL(_body, _sctx.Wire)") {
		t.Error("stub does not append the hidden FTL parameter")
	}
	if !strings.Contains(instr, "_body, _f, _err = orb.TakeFTL(_body)") {
		t.Error("skeleton does not strip the hidden FTL parameter")
	}
	if !strings.Contains(instr, "_rep.Body = orb.AppendFTL(_rep.Body, _rf)") {
		t.Error("skeleton reply does not carry the FTL back")
	}
}

func TestRaisesMapping(t *testing.T) {
	instr := generate(t, true)
	if !strings.Contains(instr, `case "PrinterJam":`) {
		t.Error("stub lacks exception demarshal case")
	}
	if !strings.Contains(instr, `orb.UserExceptionReply("PrinterJam"`) {
		t.Error("skeleton lacks exception reply")
	}
}

func TestGenerateRejectsSemanticErrors(t *testing.T) {
	spec, err := idl.Parse("interface I { void f(in Nope x); }")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(spec, Options{Package: "p"}); err == nil {
		t.Fatal("semantic error not propagated")
	}
}

func TestOnewayGeneratesPostPath(t *testing.T) {
	instr := generate(t, true)
	if !strings.Contains(instr, `_s.ref.Post("poke"`) {
		t.Error("oneway stub does not Post")
	}
}

func TestEnumGeneration(t *testing.T) {
	spec, err := idl.Parse(`
		enum Mode { OFF, SLOW, FAST };
		struct Cfg { Mode m; sequence<Mode> history; };
		interface Ctl { Mode bump(in Mode m, out Cfg c); };
	`)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := Generate(spec, Options{Package: "p", Instrument: true, Source: "t.idl"})
	if err != nil {
		t.Fatal(err)
	}
	code := string(raw)
	for _, want := range []string{
		"type Mode uint32",
		"ModeOFF",
		"Mode = 0",
		"ModeFAST",
		"Mode = 2",
		"func (v Mode) String() string",
		"func (v Mode) Valid() bool { return uint32(v) < 3 }",
		"_enc.PutUint32(uint32(v.M))",
		"v.M = Mode(_dec.Uint32())",
		"Bump(m Mode) (Mode, Cfg, error)",
	} {
		if !strings.Contains(code, want) {
			t.Errorf("generated enum code missing %q", want)
		}
	}
	// Error paths return the enum conversion zero, not a struct literal.
	if !strings.Contains(code, "return Mode(0), Cfg{},") {
		t.Error("zero return for enum wrong")
	}
}
