package logdb

import (
	"bytes"
	"path/filepath"
	"testing"

	"causeway/internal/ftl"
	"causeway/internal/probe"
	"causeway/internal/uuid"
)

func ev(chain uuid.UUID, seq uint64, e ftl.Event, op string) probe.Record {
	return probe.Record{
		Kind:    probe.KindEvent,
		Process: "p1",
		Chain:   chain,
		Seq:     seq,
		Event:   e,
		Op:      probe.OpID{Component: "c", Interface: "I", Operation: op, Object: "o"},
	}
}

func link(parent uuid.UUID, seq uint64, child uuid.UUID) probe.Record {
	return probe.Record{Kind: probe.KindLink, LinkParent: parent, LinkParentSeq: seq, LinkChild: child}
}

func TestChainsAndEventsSorted(t *testing.T) {
	s := NewStore()
	g := &uuid.SequentialGenerator{Seed: 1}
	c1, c2 := g.NewUUID(), g.NewUUID()
	// Insert out of order to prove the query sorts by seq.
	s.Insert(
		ev(c2, 2, ftl.SkelStart, "G"),
		ev(c1, 4, ftl.StubEnd, "F"),
		ev(c1, 1, ftl.StubStart, "F"),
		ev(c2, 1, ftl.StubStart, "G"),
		ev(c1, 3, ftl.SkelEnd, "F"),
		ev(c1, 2, ftl.SkelStart, "F"),
	)
	chains := s.Chains()
	if len(chains) != 2 {
		t.Fatalf("Chains = %v", chains)
	}
	if uuid.Compare(chains[0], chains[1]) >= 0 {
		t.Fatal("Chains not sorted")
	}
	evs := s.Events(c1)
	if len(evs) != 4 {
		t.Fatalf("Events(c1) len = %d", len(evs))
	}
	for i, r := range evs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("event %d seq = %d", i, r.Seq)
		}
	}
	if got := s.Events(uuid.New()); len(got) != 0 {
		t.Fatal("Events for unknown chain non-empty")
	}
}

func TestChildChainLookup(t *testing.T) {
	s := NewStore()
	p, c := uuid.New(), uuid.New()
	s.Insert(link(p, 5, c))
	got, ok := s.ChildChain(p, 5)
	if !ok || got != c {
		t.Fatalf("ChildChain = %v, %v", got, ok)
	}
	if _, ok := s.ChildChain(p, 6); ok {
		t.Fatal("found link at wrong seq")
	}
	if len(s.Links()) != 1 {
		t.Fatal("Links() wrong length")
	}
}

func TestComputeStats(t *testing.T) {
	s := NewStore()
	c1, c2 := uuid.New(), uuid.New()
	s.Insert(
		ev(c1, 1, ftl.StubStart, "F"),
		ev(c1, 2, ftl.SkelStart, "F"),
		ev(c1, 3, ftl.SkelEnd, "F"),
		ev(c1, 4, ftl.StubEnd, "F"),
		ev(c2, 1, ftl.StubStart, "G"),
		ev(c2, 2, ftl.StubEnd, "G"),
		link(c2, 1, uuid.New()),
	)
	st := s.ComputeStats()
	if st.Chains != 2 || st.Calls != 2 || st.Methods != 2 || st.Interfaces != 1 ||
		st.Components != 1 || st.Records != 6 || st.Links != 1 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestWriteStreamLoadRoundTrip(t *testing.T) {
	s := NewStore()
	c := uuid.New()
	s.Insert(
		ev(c, 1, ftl.StubStart, "F"),
		ev(c, 2, ftl.SkelStart, "F"),
		link(c, 1, uuid.New()),
	)
	var buf bytes.Buffer
	if err := s.WriteStream(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := probe.ReadStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	s2.Insert(recs...)
	if s2.Len() != s.Len() {
		t.Fatalf("round trip lost records: %d != %d", s2.Len(), s.Len())
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ftlog")
	s := NewStore()
	c := uuid.New()
	s.Insert(ev(c, 1, ftl.StubStart, "F"), ev(c, 2, ftl.StubEnd, "F"))
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if err := s2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("loaded %d records", s2.Len())
	}
	if err := s2.LoadFile(filepath.Join(dir, "missing.ftlog")); err == nil {
		t.Fatal("loading missing file succeeded")
	}
}

func TestEventsLazySort(t *testing.T) {
	s := NewStore()
	c := uuid.New()
	// Out-of-order insert marks the chain dirty; the first query sorts it
	// in place and clears the flag, so later queries are pure copy-out.
	s.Insert(ev(c, 2, ftl.SkelStart, "F"), ev(c, 1, ftl.StubStart, "F"))
	if !s.events[c].dirty {
		t.Fatal("out-of-order insert did not mark the chain dirty")
	}
	if got := s.Events(c); got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("Events not sorted: %v", got)
	}
	if s.events[c].dirty {
		t.Fatal("query did not clear the dirty flag")
	}
	// In-order append onto a sorted chain must stay clean: the hot path of
	// live ingest (per-connection order preserved) never pays a sort.
	s.Insert(ev(c, 3, ftl.SkelEnd, "F"), ev(c, 4, ftl.StubEnd, "F"))
	if s.events[c].dirty {
		t.Fatal("in-order append marked the chain dirty")
	}
	if got := s.Events(c); len(got) != 4 || got[3].Seq != 4 {
		t.Fatalf("Events after append: %v", got)
	}
	// A late out-of-order record re-dirties and re-sorts exactly once.
	s.Insert(ev(c, 0, ftl.StubStart, "Z"))
	if !s.events[c].dirty {
		t.Fatal("late out-of-order record did not re-dirty the chain")
	}
	if got := s.Events(c); got[0].Seq != 0 {
		t.Fatalf("re-sort failed: %v", got)
	}
	// The returned slice is a copy: mutating it must not corrupt the store.
	got := s.Events(c)
	got[0].Seq = 99
	if s.Events(c)[0].Seq == 99 {
		t.Fatal("Events returned the store's own slice")
	}
}
