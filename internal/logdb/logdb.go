// Package logdb is the relational-style store the monitoring data is
// synthesized into after a run (§3: "the scattered logs are collected and
// eventually synthesized into a relational database").
//
// The analyzer needs exactly the two queries the paper describes for DSCG
// reconstruction — the set of unique Function UUIDs ever created, and the
// events sharing a UUID sorted by ascending event number — plus link lookup
// for oneway chain stitching and simple aggregate statistics. The store
// indexes records at insertion so both queries are O(result).
package logdb

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"causeway/internal/probe"
	"causeway/internal/uuid"
)

// Store holds merged monitoring records from all processes of a run.
// It is safe for concurrent insertion and querying.
type Store struct {
	mu       sync.RWMutex
	events   map[uuid.UUID]*chainRows // KindEvent rows by chain
	links    []probe.Record           // KindLink rows
	byParent map[chainSeq]uuid.UUID   // (parent chain, seq) -> child chain
	total    int
}

// chainRows holds one chain's event records. Insertion only appends and
// marks the chain dirty; the rows are sorted by seq lazily, at most once
// per insertion burst, so repeated analyzer queries over a settled store
// are O(result) instead of O(result·log result) each.
type chainRows struct {
	recs  []probe.Record
	dirty bool
}

type chainSeq struct {
	chain uuid.UUID
	seq   uint64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		events:   make(map[uuid.UUID]*chainRows),
		byParent: make(map[chainSeq]uuid.UUID),
	}
}

// Insert adds records to the store.
func (s *Store) Insert(recs ...probe.Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range recs {
		s.total++
		switch r.Kind {
		case probe.KindEvent:
			rows, ok := s.events[r.Chain]
			if !ok {
				rows = &chainRows{}
				s.events[r.Chain] = rows
			}
			// A record appended in seq order keeps sorted rows sorted; only
			// true out-of-order arrival (cross-connection interleaving,
			// merged logs) marks the chain dirty.
			if !rows.dirty && len(rows.recs) > 0 && r.Seq < rows.recs[len(rows.recs)-1].Seq {
				rows.dirty = true
			}
			rows.recs = append(rows.recs, r)
		case probe.KindLink:
			s.links = append(s.links, r)
			s.byParent[chainSeq{r.LinkParent, r.LinkParentSeq}] = r.LinkChild
		}
	}
}

// Len reports the total number of inserted records (events + links).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.total
}

// Chains is the paper's first reconstruction query: the set of unique
// Function UUIDs ever created, in a deterministic (sorted) order.
func (s *Store) Chains() []uuid.UUID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]uuid.UUID, 0, len(s.events))
	for c := range s.events {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return uuid.Compare(out[i], out[j]) < 0 })
	return out
}

// Events is the paper's second query: all event records sharing a UUID,
// sorted by ascending event sequence number. The returned slice is a copy.
// The sort happens lazily, once per insertion burst: a clean chain is pure
// copy-out, so repeated queries over a settled store are O(result).
func (s *Store) Events(chain uuid.UUID) []probe.Record {
	s.mu.RLock()
	rows := s.events[chain]
	if rows == nil {
		s.mu.RUnlock()
		return nil
	}
	if rows.dirty {
		// Upgrade to the write lock and re-check: another query may have
		// sorted the chain while we waited.
		s.mu.RUnlock()
		s.mu.Lock()
		if rows.dirty {
			sort.SliceStable(rows.recs, func(i, j int) bool { return rows.recs[i].Seq < rows.recs[j].Seq })
			rows.dirty = false
		}
		out := make([]probe.Record, len(rows.recs))
		copy(out, rows.recs)
		s.mu.Unlock()
		return out
	}
	out := make([]probe.Record, len(rows.recs))
	copy(out, rows.recs)
	s.mu.RUnlock()
	return out
}

// ChildChain resolves the oneway link for the stub_start event at (parent
// chain, seq), if one was recorded.
func (s *Store) ChildChain(parent uuid.UUID, seq uint64) (uuid.UUID, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.byParent[chainSeq{parent, seq}]
	return c, ok
}

// Links returns all chain-link records.
func (s *Store) Links() []probe.Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]probe.Record, len(s.links))
	copy(out, s.links)
	return out
}

// Stats summarizes the run, mirroring the scale figures the paper reports
// for the commercial system (calls, unique methods/interfaces/components).
type Stats struct {
	Records    int // total event records
	Links      int
	Chains     int
	Calls      int // stub_start + collocated-merged count approximation
	Methods    int // unique (interface, operation) pairs
	Interfaces int
	Components int
	Processes  int
	Threads    int
}

// ComputeStats scans the store and aggregates run statistics.
func (s *Store) ComputeStats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var st Stats
	methods := map[string]bool{}
	ifaces := map[string]bool{}
	comps := map[string]bool{}
	procs := map[string]bool{}
	threads := map[string]bool{}
	for _, rows := range s.events {
		st.Chains++
		for _, r := range rows.recs {
			st.Records++
			if r.Event.ProbeNumber() == 1 {
				st.Calls++
			}
			methods[r.Op.Interface+"::"+r.Op.Operation] = true
			ifaces[r.Op.Interface] = true
			comps[r.Op.Component] = true
			procs[r.Process] = true
			threads[fmt.Sprintf("%s/%d", r.Process, r.Thread)] = true
		}
	}
	// A oneway call has stub_start on the parent chain only; its skeleton
	// side starts with skel_start, so Calls from probe-1 events is exact.
	st.Links = len(s.links)
	st.Methods = len(methods)
	st.Interfaces = len(ifaces)
	st.Components = len(comps)
	st.Processes = len(procs)
	st.Threads = len(threads)
	return st
}

// SaveFile persists the entire store as a gob record stream.
func (s *Store) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("logdb: save: %w", err)
	}
	defer f.Close()
	if err := s.WriteStream(f); err != nil {
		return err
	}
	return f.Close()
}

// WriteStream streams all records to w in insertion-independent but
// deterministic order (links first, then events by chain and seq).
func (s *Store) WriteStream(w io.Writer) error {
	sink := probe.NewStreamSink(w)
	for _, l := range s.Links() {
		sink.Append(l)
	}
	for _, c := range s.Chains() {
		for _, r := range s.Events(c) {
			sink.Append(r)
		}
	}
	return sink.Close()
}

// LoadFile reads a gob record stream file into the store. A file with a
// torn tail record (crashed writer) loads its complete prefix and returns
// nil; only hard decode failures are errors.
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("logdb: load: %w", err)
	}
	defer f.Close()
	recs, err := probe.ReadStream(f)
	if err != nil && !errors.Is(err, probe.ErrTruncated) {
		return err
	}
	s.Insert(recs...)
	return nil
}
