package online

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"causeway/internal/analysis"
	"causeway/internal/ftl"
	"causeway/internal/probe"
	"causeway/internal/topology"
	"causeway/internal/uuid"
	"causeway/internal/vclock"
)

// liveHarness drives real probes straight into the online monitor.
type liveHarness struct {
	p     *probe.Probes
	clock *vclock.Virtual
}

func newLiveHarness(t *testing.T, sink probe.Sink, aspects probe.Aspect) *liveHarness {
	t.Helper()
	clock := vclock.NewVirtual()
	p, err := probe.New(probe.Config{
		Process: topology.Process{ID: "p1", Processor: topology.Processor{ID: "c", Type: "x86"}},
		Aspects: aspects,
		Clock:   clock,
		Sink:    sink,
		Chains:  &uuid.SequentialGenerator{Seed: 77},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &liveHarness{p: p, clock: clock}
}

func (h *liveHarness) callSync(name string, body func()) {
	op := probe.OpID{Interface: "I", Operation: name, Object: "o"}
	ctx := h.p.StubStart(op, false)
	reply := make(chan ftl.FTL, 1)
	wire := ctx.Wire
	go func() {
		sctx := h.p.SkelStart(op, wire, false)
		if body != nil {
			body()
		}
		reply <- h.p.SkelEnd(sctx)
	}()
	h.p.StubEnd(ctx, <-reply)
}

func (h *liveHarness) callOneway(name string) <-chan struct{} {
	op := probe.OpID{Interface: "I", Operation: name, Object: "o"}
	ctx := h.p.StubStart(op, true)
	done := make(chan struct{})
	wire := ctx.Wire
	go func() {
		defer close(done)
		sctx := h.p.SkelStart(op, wire, true)
		h.p.SkelEnd(sctx)
	}()
	h.p.StubEnd(ctx, ftl.FTL{})
	return done
}

func TestOnlineEmitsCompletedRoots(t *testing.T) {
	var mu sync.Mutex
	var roots []RootEvent
	m := NewMonitor(Config{OnRoot: func(ev RootEvent) {
		mu.Lock()
		defer mu.Unlock()
		roots = append(roots, ev)
	}})
	h := newLiveHarness(t, m, 0)
	h.callSync("F", func() { h.callSync("G", nil) })
	h.p.Tunnel().Clear()
	h.callSync("H", nil)
	h.p.Tunnel().Clear()

	mu.Lock()
	defer mu.Unlock()
	if len(roots) != 2 {
		t.Fatalf("got %d root events, want 2", len(roots))
	}
	if roots[0].Root.Op.Operation != "F" || len(roots[0].Root.Children) != 1 {
		t.Fatalf("first root = %s with %d children", roots[0].Root.Op.Operation, len(roots[0].Root.Children))
	}
	if roots[1].Root.Op.Operation != "H" {
		t.Fatalf("second root = %s", roots[1].Root.Op.Operation)
	}
	if m.OpenChains() != 0 {
		t.Fatalf("OpenChains = %d after quiesce", m.OpenChains())
	}
}

func TestOnlineSiblingRootsEmitSeparately(t *testing.T) {
	count := 0
	m := NewMonitor(Config{OnRoot: func(RootEvent) { count++ }})
	h := newLiveHarness(t, m, 0)
	// Two siblings on ONE chain: two separate root completions.
	h.callSync("A", nil)
	h.callSync("B", nil)
	h.p.Tunnel().Clear()
	if count != 2 {
		t.Fatalf("sibling roots emitted %d events, want 2", count)
	}
}

func TestOnlineOutOfOrderArrival(t *testing.T) {
	// Capture a run's records, shuffle them, feed the monitor: seq-order
	// application must still produce the same completed roots.
	mem := &probe.MemorySink{}
	h := newLiveHarness(t, mem, 0)
	h.callSync("F", func() {
		h.callSync("G", func() { h.callSync("H", nil) })
	})
	h.p.Tunnel().Clear()

	recs := mem.Snapshot()
	r := rand.New(rand.NewSource(99))
	r.Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })

	var got *analysis.Node
	anomalies := 0
	m := NewMonitor(Config{
		OnRoot:    func(ev RootEvent) { got = ev.Root },
		OnAnomaly: func(analysis.Anomaly) { anomalies++ },
	})
	for _, rec := range recs {
		m.Append(rec)
	}
	if anomalies != 0 {
		t.Fatalf("%d anomalies on shuffled but complete stream", anomalies)
	}
	if got == nil || got.Op.Operation != "F" || got.Count() != 3 {
		t.Fatalf("root = %+v", got)
	}
}

func TestOnlineOnewayLinkResolution(t *testing.T) {
	var events []RootEvent
	m := NewMonitor(Config{OnRoot: func(ev RootEvent) { events = append(events, ev) }})
	h := newLiveHarness(t, m, 0)
	done := h.callOneway("N")
	<-done
	h.p.Tunnel().Clear()
	// Give the skeleton goroutine's appends a moment if scheduled late.
	deadline := time.Now().Add(2 * time.Second)
	for len(events) < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2 (stub side + callee side)", len(events))
	}
	var calleeSide *RootEvent
	for i := range events {
		if events[i].Root.StubStart == nil {
			calleeSide = &events[i]
		}
	}
	if calleeSide == nil {
		t.Fatal("callee-side root not emitted")
	}
	if !calleeSide.HasParent {
		t.Fatal("callee-side root not linked to parent chain")
	}
}

func TestOnlineSlowCallback(t *testing.T) {
	slow := 0
	m := NewMonitor(Config{
		OnSlow:        func(RootEvent) { slow++ },
		SlowThreshold: 100 * time.Microsecond,
	})
	h := newLiveHarness(t, m, probe.AspectLatency)
	h.callSync("fast", nil)
	h.p.Tunnel().Clear()
	if slow != 0 {
		t.Fatalf("fast call flagged slow")
	}
	h.callSync("slow", func() { h.clock.Advance(5 * time.Millisecond) })
	h.p.Tunnel().Clear()
	if slow != 1 {
		t.Fatalf("slow calls flagged = %d, want 1", slow)
	}
}

func TestOnlineAnomalyAndRecovery(t *testing.T) {
	anomalies := 0
	roots := 0
	m := NewMonitor(Config{
		OnRoot:    func(RootEvent) { roots++ },
		OnAnomaly: func(analysis.Anomaly) { anomalies++ },
	})
	chain := uuid.UUID{0: 1}
	op := func(n string) probe.OpID { return probe.OpID{Operation: n} }
	mk := func(seq uint64, ev ftl.Event, name string) probe.Record {
		return probe.Record{Kind: probe.KindEvent, Chain: chain, Seq: seq, Event: ev, Op: op(name)}
	}
	// Corrupt: skel_end for an op that never started; then a clean call.
	m.Append(mk(1, ftl.SkelEnd, "X"))
	m.Append(mk(2, ftl.StubStart, "F"))
	m.Append(mk(3, ftl.SkelStart, "F"))
	m.Append(mk(4, ftl.SkelEnd, "F"))
	m.Append(mk(5, ftl.StubEnd, "F"))
	if anomalies == 0 {
		t.Fatal("corruption not flagged")
	}
	if roots != 1 {
		t.Fatalf("clean call after corruption: %d roots, want 1", roots)
	}
}

func TestOnlineFlushReportsOpenChains(t *testing.T) {
	anomalies := 0
	m := NewMonitor(Config{OnAnomaly: func(analysis.Anomaly) { anomalies++ }})
	chain := uuid.UUID{0: 2}
	m.Append(probe.Record{Kind: probe.KindEvent, Chain: chain, Seq: 1,
		Event: ftl.StubStart, Op: probe.OpID{Operation: "hung"}})
	if m.OpenChains() != 1 {
		t.Fatalf("OpenChains = %d", m.OpenChains())
	}
	m.Flush()
	if anomalies != 1 {
		t.Fatalf("flush reported %d anomalies, want 1", anomalies)
	}
	if m.OpenChains() != 0 {
		t.Fatal("flush did not clear state")
	}
}

func TestOnlineConcurrentChains(t *testing.T) {
	var mu sync.Mutex
	roots := 0
	m := NewMonitor(Config{OnRoot: func(RootEvent) {
		mu.Lock()
		roots++
		mu.Unlock()
	}})
	h := newLiveHarness(t, m, 0)
	const clients = 8
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.callSync("F", func() { h.callSync("G", nil) })
			h.p.Tunnel().Clear()
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if roots != clients {
		t.Fatalf("roots = %d, want %d", roots, clients)
	}
}
