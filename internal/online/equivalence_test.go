package online

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"causeway/internal/analysis"
	"causeway/internal/ftl"
	"causeway/internal/logdb"
	"causeway/internal/probe"
	"causeway/internal/topology"
	"causeway/internal/uuid"
)

// randomTreeRunner drives a random call tree through real probes into BOTH
// the online monitor and a memory sink for offline reconstruction.
type randomTreeRunner struct {
	p *probe.Probes
	r *rand.Rand
	n int
}

func (rr *randomTreeRunner) call(depth int) {
	rr.n++
	name := fmt.Sprintf("op%d", rr.n)
	op := probe.OpID{Interface: "I", Operation: name, Object: "o"}
	body := func() {
		if depth < 3 {
			for i := 0; i < rr.r.Intn(3); i++ {
				rr.call(depth + 1)
			}
		}
	}
	switch rr.r.Intn(3) {
	case 0: // collocated
		ctx := rr.p.CollocStart(op)
		body()
		rr.p.CollocEnd(ctx)
	case 1: // oneway, awaited for quiescence
		ctx := rr.p.StubStart(op, true)
		done := make(chan struct{})
		wire := ctx.Wire
		go func() {
			defer close(done)
			sctx := rr.p.SkelStart(op, wire, true)
			body()
			rr.p.SkelEnd(sctx)
			rr.p.Tunnel().Clear()
		}()
		rr.p.StubEnd(ctx, ftl.FTL{})
		<-done
	default: // sync remote
		ctx := rr.p.StubStart(op, false)
		reply := make(chan ftl.FTL, 1)
		wire := ctx.Wire
		go func() {
			sctx := rr.p.SkelStart(op, wire, false)
			body()
			reply <- rr.p.SkelEnd(sctx)
		}()
		rr.p.StubEnd(ctx, <-reply)
	}
}

// shapeOf serializes a node subtree for comparison.
func shapeOf(n *analysis.Node) string {
	s := n.Op.Operation
	if n.Oneway {
		s += "!"
	}
	if n.Collocated {
		s += "*"
	}
	if len(n.Children) == 0 {
		return s
	}
	s += "("
	for i, c := range n.Children {
		if i > 0 {
			s += " "
		}
		s += shapeOf(c)
	}
	return s + ")"
}

// TestPropertyOnlineMatchesOffline: for random runs, the set of subtree
// shapes the online monitor emits equals the offline DSCG's — modulo the
// one structural difference that online emits oneway callee sides as their
// own roots (linked by parent chain) while offline stitches them inline.
func TestPropertyOnlineMatchesOffline(t *testing.T) {
	fn := func(seed int64) bool {
		var mu sync.Mutex
		var onlineShapes []string
		monitor := NewMonitor(Config{OnRoot: func(ev RootEvent) {
			mu.Lock()
			defer mu.Unlock()
			// Skip oneway stub-side roots (no skeleton pair on this chain):
			// offline merges them with their callee side.
			if ev.Root.Oneway && ev.Root.SkelStart == nil {
				return
			}
			onlineShapes = append(onlineShapes, shapeOf(ev.Root))
		}})
		mem := &probe.MemorySink{}
		p, err := probe.New(probe.Config{
			Process: topology.Process{ID: "p", Processor: topology.Processor{ID: "c", Type: "x86"}},
			Sink:    probe.TeeSink{mem, monitor},
			Chains:  &uuid.SequentialGenerator{Seed: uint64(seed)},
		})
		if err != nil {
			t.Fatal(err)
		}
		rr := &randomTreeRunner{p: p, r: rand.New(rand.NewSource(seed))}
		for i := 0; i < 3; i++ {
			rr.call(0)
			p.Tunnel().Clear()
		}

		db := logdb.NewStore()
		db.Insert(mem.Snapshot()...)
		g := analysis.Reconstruct(db)
		if len(g.Anomalies) != 0 {
			t.Logf("seed %d offline anomalies: %v", seed, g.Anomalies)
			return false
		}
		// Offline: project the stitched DSCG into the shapes the online
		// monitor emits. Online's per-chain view renders an embedded oneway
		// node stub-side only (bare leaf) because its callee subtree lives
		// on the child chain, which online emits as a separate root.
		var onlineView func(n *analysis.Node, asCalleeRoot bool) string
		onlineView = func(n *analysis.Node, asCalleeRoot bool) string {
			s := n.Op.Operation
			if n.Oneway {
				s += "!"
			}
			if n.Collocated {
				s += "*"
			}
			if n.Oneway && !asCalleeRoot {
				return s // stub side only
			}
			if len(n.Children) == 0 {
				return s
			}
			s += "("
			for i, c := range n.Children {
				if i > 0 {
					s += " "
				}
				s += onlineView(c, false)
			}
			return s + ")"
		}
		var offlineShapes []string
		var emitLike func(n *analysis.Node, topLevel bool)
		emitLike = func(n *analysis.Node, topLevel bool) {
			if topLevel && !n.Oneway {
				offlineShapes = append(offlineShapes, onlineView(n, false))
			}
			if n.Oneway && n.SkelStart != nil {
				// Online sees the callee side as a root of the child chain.
				offlineShapes = append(offlineShapes, onlineView(n, true))
			}
			for _, c := range n.Children {
				emitLike(c, false)
			}
		}
		for _, tr := range g.Trees {
			for _, r := range tr.Roots {
				emitLike(r, true)
			}
		}

		mu.Lock()
		defer mu.Unlock()
		sort.Strings(onlineShapes)
		sort.Strings(offlineShapes)
		if len(onlineShapes) != len(offlineShapes) {
			t.Logf("seed %d: online %v vs offline %v", seed, onlineShapes, offlineShapes)
			return false
		}
		for i := range onlineShapes {
			if onlineShapes[i] != offlineShapes[i] {
				t.Logf("seed %d: online %v vs offline %v", seed, onlineShapes, offlineShapes)
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
