package online

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"causeway/internal/analysis"
	"causeway/internal/collector"
	"causeway/internal/logdb"
	"causeway/internal/probe"
	"causeway/internal/topology"
	"causeway/internal/uuid"
)

// TestConcurrentAppendAcrossProcesses hammers one shared Monitor from many
// goroutines, each acting as an independent simulated process with its own
// probe set — the §6 management deployment where every process of the
// application feeds the same live monitor. Afterwards the offline analyzer
// over the same records must agree on root count and see no anomalies.
// Run under -race in CI.
func TestConcurrentAppendAcrossProcesses(t *testing.T) {
	const procs = 8
	const callsPerProc = 50

	var roots atomic.Int64
	monitor := NewMonitor(Config{
		OnRoot: func(RootEvent) { roots.Add(1) },
		OnAnomaly: func(a analysis.Anomaly) {
			t.Errorf("live anomaly: %v", a)
		},
	})

	locals := make([]*probe.MemorySink, procs)
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		locals[i] = &probe.MemorySink{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("proc-%d", i)
			p, err := probe.New(probe.Config{
				Process: topology.Process{ID: name, Processor: topology.Processor{ID: name, Type: "x86"}},
				Sink:    probe.TeeSink{locals[i], monitor},
				Chains:  &uuid.SequentialGenerator{Seed: uint64(i + 1)},
			})
			if err != nil {
				t.Error(err)
				return
			}
			op := func(n string) probe.OpID { return probe.OpID{Interface: "I", Operation: n} }
			call := func(n string, body func()) {
				ctx := p.StubStart(op(n), false)
				sctx := p.SkelStart(op(n), ctx.Wire, false)
				if body != nil {
					body()
				}
				p.StubEnd(ctx, p.SkelEnd(sctx))
			}
			for c := 0; c < callsPerProc; c++ {
				call("top", func() { call("inner", nil) })
				p.Tunnel().Clear()
			}
		}(i)
	}
	wg.Wait()

	if got, want := roots.Load(), int64(procs*callsPerProc); got != want {
		t.Fatalf("monitor completed %d roots, want %d", got, want)
	}
	if monitor.OpenChains() != 0 {
		t.Fatalf("%d chains open after quiescence", monitor.OpenChains())
	}

	// The offline analyzer over the identical records agrees.
	db := logdb.NewStore()
	collector.FromSinks(db, locals...)
	g := analysis.Reconstruct(db)
	if len(g.Anomalies) != 0 {
		t.Fatalf("offline anomalies: %v", g.Anomalies[0])
	}
	offlineRoots := 0
	for _, tr := range g.Trees {
		offlineRoots += len(tr.Roots)
	}
	if offlineRoots != procs*callsPerProc {
		t.Fatalf("offline roots = %d, want %d", offlineRoots, procs*callsPerProc)
	}
}
