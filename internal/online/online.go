// Package online applies the global causality capturing technique "from
// the on-line perspective for application-level system management" — one
// of the paper's §6 future-work directions, built here as an extension.
//
// Monitor is a probe.Sink: attach it (alone or via probe.TeeSink next to
// the persistent log) and it incrementally runs the Figure-4 state machine
// per chain *as records arrive*, tolerating cross-process arrival skew by
// applying each chain's events strictly in sequence-number order and
// buffering early arrivals. The moment a top-level invocation completes,
// its subtree is delivered to the OnRoot callback with latency metrics
// computed — the hook a management layer uses for live slow-call or
// error-topology reactions, without waiting for the application to reach a
// quiescent state as the offline analyzer does (§3).
package online

import (
	"fmt"
	"sync"
	"time"

	"causeway/internal/analysis"
	"causeway/internal/ftl"
	"causeway/internal/metrics"
	"causeway/internal/probe"
	"causeway/internal/uuid"
)

// RootEvent describes one completed top-level invocation.
type RootEvent struct {
	// Root is the completed invocation subtree with latency annotated.
	Root *analysis.Node
	// Chain is the causal chain the root belongs to.
	Chain uuid.UUID
	// ParentChain is set for oneway callee sides whose fork link has been
	// observed: the chain that issued the oneway call.
	ParentChain uuid.UUID
	// HasParent reports whether ParentChain is valid.
	HasParent bool
}

// Config wires the monitor's callbacks. Callbacks run synchronously on the
// probe's thread and must be fast; they may be invoked concurrently from
// different application threads.
type Config struct {
	// OnRoot fires when a top-level invocation completes.
	OnRoot func(RootEvent)
	// OnSlow fires additionally when a completed root's compensated
	// latency exceeds SlowThreshold (> 0).
	OnSlow        func(RootEvent)
	SlowThreshold time.Duration
	// OnAnomaly fires when a chain's event stream violates the Figure-4
	// transitions; the chain's state is reset and parsing resumes.
	OnAnomaly func(analysis.Anomaly)
	// Metrics, when set, receives every completed node's compensated
	// latency via Registry.ObserveChain. Because the values come from the
	// same ComputeLatencySubtree pass the offline analyzer runs, the
	// in-process /metrics quantiles agree exactly with offline
	// InterfaceStat quantiles over the same records.
	Metrics *metrics.Registry
	// RecentRoots bounds the ring of completed-root summaries kept for
	// introspection (/chainz). Zero selects the default of 64.
	RecentRoots int
}

// Monitor incrementally reconstructs causality from a live record stream.
type Monitor struct {
	cfg Config

	mu     sync.Mutex
	chains map[uuid.UUID]*chainState
	// links resolves callee chains to their parents (KindLink records).
	links map[uuid.UUID]uuid.UUID // child chain -> parent chain

	// recent is a fixed-size ring of completed-root summaries; recentN
	// counts completions ever, so recentN % len(recent) is the next slot.
	recent  []RootSummary
	recentN uint64
}

// RootSummary is one completed top-level invocation, condensed for
// introspection displays: the op, its chain, how big the subtree was, and
// the compensated root latency.
type RootSummary struct {
	Op         probe.OpID
	Chain      uuid.UUID
	Oneway     bool
	Nodes      int
	Latency    time.Duration
	HasLatency bool
	// When is the root's closing wall timestamp when the latency aspect
	// was armed, else the monitor's observation time.
	When time.Time
}

var (
	_ probe.Sink     = (*Monitor)(nil)
	_ probe.SpanSink = (*Monitor)(nil)
)

// NewMonitor builds an online monitor.
func NewMonitor(cfg Config) *Monitor {
	capN := cfg.RecentRoots
	if capN <= 0 {
		capN = 64
	}
	return &Monitor{
		cfg:    cfg,
		chains: make(map[uuid.UUID]*chainState),
		links:  make(map[uuid.UUID]uuid.UUID),
		recent: make([]RootSummary, capN),
	}
}

// chainState is one chain's incremental parse: events applied in seq
// order, with early arrivals parked in pending.
type chainState struct {
	nextSeq uint64
	pending map[uint64]probe.Record
	stack   []*analysis.Node
}

// Append implements probe.Sink.
func (m *Monitor) Append(r probe.Record) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.appendLocked(r)
}

// AppendSpan implements probe.SpanSink: the records of one invocation
// span apply under a single lock acquisition instead of one per record.
func (m *Monitor) AppendSpan(recs []probe.Record) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range recs {
		m.appendLocked(recs[i])
	}
}

func (m *Monitor) appendLocked(r probe.Record) {
	switch r.Kind {
	case probe.KindLink:
		m.links[r.LinkChild] = r.LinkParent
	case probe.KindEvent:
		cs, ok := m.chains[r.Chain]
		if !ok {
			cs = &chainState{nextSeq: 1, pending: make(map[uint64]probe.Record)}
			m.chains[r.Chain] = cs
		}
		cs.pending[r.Seq] = r
		for {
			next, ok := cs.pending[cs.nextSeq]
			if !ok {
				return
			}
			delete(cs.pending, cs.nextSeq)
			cs.nextSeq++
			m.apply(cs, next)
		}
	}
}

func (m *Monitor) anomaly(r probe.Record, format string, args ...any) {
	if m.cfg.OnAnomaly != nil {
		m.cfg.OnAnomaly(analysis.Anomaly{
			Chain:  r.Chain,
			Index:  int(r.Seq),
			Reason: fmt.Sprintf(format, args...),
		})
	}
}

// apply advances one chain's state machine by one event.
func (m *Monitor) apply(cs *chainState, r probe.Record) {
	rec := r // stable copy whose address the node keeps
	top := func() *analysis.Node {
		if len(cs.stack) == 0 {
			return nil
		}
		return cs.stack[len(cs.stack)-1]
	}
	push := func(n *analysis.Node) {
		if t := top(); t != nil {
			t.Children = append(t.Children, n)
		}
		cs.stack = append(cs.stack, n)
	}
	pop := func() *analysis.Node {
		n := cs.stack[len(cs.stack)-1]
		cs.stack = cs.stack[:len(cs.stack)-1]
		if len(cs.stack) == 0 {
			m.complete(n, rec.Chain)
		}
		return n
	}
	reset := func(format string, args ...any) {
		m.anomaly(rec, format, args...)
		cs.stack = nil
	}

	switch rec.Event {
	case ftl.StubStart:
		push(&analysis.Node{
			Op: rec.Op, Chain: rec.Chain,
			Oneway: rec.Oneway, Collocated: rec.Collocated,
			StubStart: &rec,
		})
	case ftl.SkelStart:
		t := top()
		switch {
		case t == nil:
			// Callee side of a oneway call: a root with no stub side.
			push(&analysis.Node{Op: rec.Op, Chain: rec.Chain, Oneway: rec.Oneway, SkelStart: &rec})
		case t.Op == rec.Op && t.SkelStart == nil && !t.Oneway:
			t.SkelStart = &rec
		default:
			reset("unexpected skel_start(%s)", rec.Op.Operation)
		}
	case ftl.SkelEnd:
		t := top()
		switch {
		case t == nil:
			reset("skel_end(%s) with no open invocation", rec.Op.Operation)
		case t.Op == rec.Op && t.SkelStart != nil && t.SkelEnd == nil:
			t.SkelEnd = &rec
			if t.StubStart == nil {
				// Callee-side root finishes at skeleton end.
				pop()
			}
		default:
			reset("unexpected skel_end(%s)", rec.Op.Operation)
		}
	case ftl.StubEnd:
		t := top()
		switch {
		case t == nil:
			reset("stub_end(%s) with no open invocation", rec.Op.Operation)
		case t.Op == rec.Op && t.StubEnd == nil && (t.Oneway || t.SkelEnd != nil || t.Collocated):
			// Oneway stub sides close without a skeleton pair on this
			// chain; synchronous calls must have closed their skeleton.
			if !t.Oneway && t.SkelEnd == nil {
				reset("stub_end(%s) before skel_end", rec.Op.Operation)
				return
			}
			t.StubEnd = &rec
			pop()
		default:
			reset("unexpected stub_end(%s)", rec.Op.Operation)
		}
	default:
		reset("invalid event %v", rec.Event)
	}
}

// complete fires the callbacks for a finished top-level invocation.
func (m *Monitor) complete(root *analysis.Node, chain uuid.UUID) {
	analysis.ComputeLatencySubtree(root)

	// Feed the in-process metrics plane and the introspection ring. Both
	// run under m.mu (Append holds it through apply), so plain slice and
	// counter writes suffice. The chain rides along as the exemplar
	// identity — when the registry has exemplars armed, a latency bucket
	// remembers which causal chain last landed in it, stamped with the
	// root's closing wall time (falling back to observation time when the
	// latency aspect was off).
	when := time.Now()
	if end := rootEnd(root); !end.IsZero() {
		when = end
	}
	whenNanos := when.UnixNano()
	nodes := 0
	root.Walk(func(n *analysis.Node) {
		nodes++
		if m.cfg.Metrics != nil && n.HasLatency {
			m.cfg.Metrics.ObserveChainEx(n.Op.Interface, n.Latency, metrics.ChainID(chain), whenNanos)
		}
	})
	sum := RootSummary{
		Op: root.Op, Chain: chain, Oneway: root.Oneway,
		Nodes: nodes, Latency: root.Latency, HasLatency: root.HasLatency,
		When: when,
	}
	m.recent[m.recentN%uint64(len(m.recent))] = sum
	m.recentN++

	ev := RootEvent{Root: root, Chain: chain}
	if parent, ok := m.links[chain]; ok {
		ev.ParentChain, ev.HasParent = parent, true
	}
	if m.cfg.OnRoot != nil {
		m.cfg.OnRoot(ev)
	}
	if m.cfg.OnSlow != nil && m.cfg.SlowThreshold > 0 &&
		root.HasLatency && root.Latency > m.cfg.SlowThreshold {
		m.cfg.OnSlow(ev)
	}
}

// rootEnd returns the root's closing wall timestamp, zero when the
// latency aspect was off.
func rootEnd(root *analysis.Node) time.Time {
	if root.StubEnd != nil && !root.StubEnd.WallEnd.IsZero() {
		return root.StubEnd.WallEnd
	}
	if root.SkelEnd != nil && !root.SkelEnd.WallEnd.IsZero() {
		return root.SkelEnd.WallEnd
	}
	return time.Time{}
}

// SetMetrics attaches a registry to feed compensated chain latencies
// into; a no-op when one is already attached, so the first process of a
// deployment sharing one monitor wins.
func (m *Monitor) SetMetrics(reg *metrics.Registry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cfg.Metrics == nil {
		m.cfg.Metrics = reg
	}
}

// RecentRoots returns up to the last RecentRoots completed top-level
// invocations, newest first — the /chainz data source.
func (m *Monitor) RecentRoots() []RootSummary {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.recentN
	capN := uint64(len(m.recent))
	count := n
	if count > capN {
		count = capN
	}
	out := make([]RootSummary, 0, count)
	for i := uint64(1); i <= count; i++ {
		out = append(out, m.recent[(n-i)%capN])
	}
	return out
}

// OpenChains reports chains with incomplete state — in-flight invocations
// or chains stalled by missing records. Management layers poll it to spot
// hangs.
func (m *Monitor) OpenChains() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	open := 0
	for _, cs := range m.chains {
		if len(cs.stack) > 0 || len(cs.pending) > 0 {
			open++
		}
	}
	return open
}

// Flush reports every still-open chain as an anomaly (e.g. at shutdown)
// and clears all state.
func (m *Monitor) Flush() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for chain, cs := range m.chains {
		if len(cs.stack) > 0 || len(cs.pending) > 0 {
			if m.cfg.OnAnomaly != nil {
				m.cfg.OnAnomaly(analysis.Anomaly{
					Chain:  chain,
					Reason: fmt.Sprintf("chain open at flush: %d unfinished invocations, %d buffered events", len(cs.stack), len(cs.pending)),
				})
			}
		}
	}
	m.chains = make(map[uuid.UUID]*chainState)
	m.links = make(map[uuid.UUID]uuid.UUID)
}
