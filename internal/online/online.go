// Package online applies the global causality capturing technique "from
// the on-line perspective for application-level system management" — one
// of the paper's §6 future-work directions, built here as an extension.
//
// Monitor is a probe.Sink: attach it (alone or via probe.TeeSink next to
// the persistent log) and it incrementally runs the Figure-4 state machine
// per chain *as records arrive*, tolerating cross-process arrival skew by
// applying each chain's events strictly in sequence-number order and
// buffering early arrivals. The moment a top-level invocation completes,
// its subtree is delivered to the OnRoot callback with latency metrics
// computed — the hook a management layer uses for live slow-call or
// error-topology reactions, without waiting for the application to reach a
// quiescent state as the offline analyzer does (§3).
package online

import (
	"fmt"
	"sync"
	"time"

	"causeway/internal/analysis"
	"causeway/internal/ftl"
	"causeway/internal/probe"
	"causeway/internal/uuid"
)

// RootEvent describes one completed top-level invocation.
type RootEvent struct {
	// Root is the completed invocation subtree with latency annotated.
	Root *analysis.Node
	// Chain is the causal chain the root belongs to.
	Chain uuid.UUID
	// ParentChain is set for oneway callee sides whose fork link has been
	// observed: the chain that issued the oneway call.
	ParentChain uuid.UUID
	// HasParent reports whether ParentChain is valid.
	HasParent bool
}

// Config wires the monitor's callbacks. Callbacks run synchronously on the
// probe's thread and must be fast; they may be invoked concurrently from
// different application threads.
type Config struct {
	// OnRoot fires when a top-level invocation completes.
	OnRoot func(RootEvent)
	// OnSlow fires additionally when a completed root's compensated
	// latency exceeds SlowThreshold (> 0).
	OnSlow        func(RootEvent)
	SlowThreshold time.Duration
	// OnAnomaly fires when a chain's event stream violates the Figure-4
	// transitions; the chain's state is reset and parsing resumes.
	OnAnomaly func(analysis.Anomaly)
}

// Monitor incrementally reconstructs causality from a live record stream.
type Monitor struct {
	cfg Config

	mu     sync.Mutex
	chains map[uuid.UUID]*chainState
	// links resolves callee chains to their parents (KindLink records).
	links map[uuid.UUID]uuid.UUID // child chain -> parent chain
}

var _ probe.Sink = (*Monitor)(nil)

// NewMonitor builds an online monitor.
func NewMonitor(cfg Config) *Monitor {
	return &Monitor{
		cfg:    cfg,
		chains: make(map[uuid.UUID]*chainState),
		links:  make(map[uuid.UUID]uuid.UUID),
	}
}

// chainState is one chain's incremental parse: events applied in seq
// order, with early arrivals parked in pending.
type chainState struct {
	nextSeq uint64
	pending map[uint64]probe.Record
	stack   []*analysis.Node
}

// Append implements probe.Sink.
func (m *Monitor) Append(r probe.Record) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch r.Kind {
	case probe.KindLink:
		m.links[r.LinkChild] = r.LinkParent
	case probe.KindEvent:
		cs, ok := m.chains[r.Chain]
		if !ok {
			cs = &chainState{nextSeq: 1, pending: make(map[uint64]probe.Record)}
			m.chains[r.Chain] = cs
		}
		cs.pending[r.Seq] = r
		for {
			next, ok := cs.pending[cs.nextSeq]
			if !ok {
				return
			}
			delete(cs.pending, cs.nextSeq)
			cs.nextSeq++
			m.apply(cs, next)
		}
	}
}

func (m *Monitor) anomaly(r probe.Record, format string, args ...any) {
	if m.cfg.OnAnomaly != nil {
		m.cfg.OnAnomaly(analysis.Anomaly{
			Chain:  r.Chain,
			Index:  int(r.Seq),
			Reason: fmt.Sprintf(format, args...),
		})
	}
}

// apply advances one chain's state machine by one event.
func (m *Monitor) apply(cs *chainState, r probe.Record) {
	rec := r // stable copy whose address the node keeps
	top := func() *analysis.Node {
		if len(cs.stack) == 0 {
			return nil
		}
		return cs.stack[len(cs.stack)-1]
	}
	push := func(n *analysis.Node) {
		if t := top(); t != nil {
			t.Children = append(t.Children, n)
		}
		cs.stack = append(cs.stack, n)
	}
	pop := func() *analysis.Node {
		n := cs.stack[len(cs.stack)-1]
		cs.stack = cs.stack[:len(cs.stack)-1]
		if len(cs.stack) == 0 {
			m.complete(n, rec.Chain)
		}
		return n
	}
	reset := func(format string, args ...any) {
		m.anomaly(rec, format, args...)
		cs.stack = nil
	}

	switch rec.Event {
	case ftl.StubStart:
		push(&analysis.Node{
			Op: rec.Op, Chain: rec.Chain,
			Oneway: rec.Oneway, Collocated: rec.Collocated,
			StubStart: &rec,
		})
	case ftl.SkelStart:
		t := top()
		switch {
		case t == nil:
			// Callee side of a oneway call: a root with no stub side.
			push(&analysis.Node{Op: rec.Op, Chain: rec.Chain, Oneway: rec.Oneway, SkelStart: &rec})
		case t.Op == rec.Op && t.SkelStart == nil && !t.Oneway:
			t.SkelStart = &rec
		default:
			reset("unexpected skel_start(%s)", rec.Op.Operation)
		}
	case ftl.SkelEnd:
		t := top()
		switch {
		case t == nil:
			reset("skel_end(%s) with no open invocation", rec.Op.Operation)
		case t.Op == rec.Op && t.SkelStart != nil && t.SkelEnd == nil:
			t.SkelEnd = &rec
			if t.StubStart == nil {
				// Callee-side root finishes at skeleton end.
				pop()
			}
		default:
			reset("unexpected skel_end(%s)", rec.Op.Operation)
		}
	case ftl.StubEnd:
		t := top()
		switch {
		case t == nil:
			reset("stub_end(%s) with no open invocation", rec.Op.Operation)
		case t.Op == rec.Op && t.StubEnd == nil && (t.Oneway || t.SkelEnd != nil || t.Collocated):
			// Oneway stub sides close without a skeleton pair on this
			// chain; synchronous calls must have closed their skeleton.
			if !t.Oneway && t.SkelEnd == nil {
				reset("stub_end(%s) before skel_end", rec.Op.Operation)
				return
			}
			t.StubEnd = &rec
			pop()
		default:
			reset("unexpected stub_end(%s)", rec.Op.Operation)
		}
	default:
		reset("invalid event %v", rec.Event)
	}
}

// complete fires the callbacks for a finished top-level invocation.
func (m *Monitor) complete(root *analysis.Node, chain uuid.UUID) {
	analysis.ComputeLatencySubtree(root)
	ev := RootEvent{Root: root, Chain: chain}
	if parent, ok := m.links[chain]; ok {
		ev.ParentChain, ev.HasParent = parent, true
	}
	if m.cfg.OnRoot != nil {
		m.cfg.OnRoot(ev)
	}
	if m.cfg.OnSlow != nil && m.cfg.SlowThreshold > 0 &&
		root.HasLatency && root.Latency > m.cfg.SlowThreshold {
		m.cfg.OnSlow(ev)
	}
}

// OpenChains reports chains with incomplete state — in-flight invocations
// or chains stalled by missing records. Management layers poll it to spot
// hangs.
func (m *Monitor) OpenChains() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	open := 0
	for _, cs := range m.chains {
		if len(cs.stack) > 0 || len(cs.pending) > 0 {
			open++
		}
	}
	return open
}

// Flush reports every still-open chain as an anomaly (e.g. at shutdown)
// and clears all state.
func (m *Monitor) Flush() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for chain, cs := range m.chains {
		if len(cs.stack) > 0 || len(cs.pending) > 0 {
			if m.cfg.OnAnomaly != nil {
				m.cfg.OnAnomaly(analysis.Anomaly{
					Chain:  chain,
					Reason: fmt.Sprintf("chain open at flush: %d unfinished invocations, %d buffered events", len(cs.stack), len(cs.pending)),
				})
			}
		}
	}
	m.chains = make(map[uuid.UUID]*chainState)
	m.links = make(map[uuid.UUID]uuid.UUID)
}
