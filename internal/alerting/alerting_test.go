package alerting

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"causeway/internal/metrics"
	"causeway/internal/sampling"
	"causeway/internal/uuid"
)

// fakeClock is a manually advanced clock for deterministic windows.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{now: time.Unix(1_000_000, 0)} }
func chainN(n byte) metrics.ChainID          { var c metrics.ChainID; c[0] = n; c[15] = n; return c }
func observeN(r *metrics.Registry, iface string, v time.Duration, n int, chain metrics.ChainID, when time.Time) {
	for i := 0; i < n; i++ {
		r.ObserveChainEx(iface, v, chain, when.UnixNano())
	}
}

func newEval(t *testing.T, reg *metrics.Registry, clock *fakeClock, pins *sampling.PinSet, rule Rule) *Evaluator {
	t.Helper()
	ev, err := NewEvaluator(Config{
		Registry: reg, Rules: []Rule{rule}, Clock: clock.Now, Pins: pins,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

// testRule: 10ms objective, 10% budget, 1s fast / 2s slow windows.
func testRule() Rule {
	return Rule{
		Name: "echo-slo", Iface: "Echo",
		Objective: 10 * time.Millisecond, Target: 0.9,
		FastWindow: time.Second, SlowWindow: 2 * time.Second,
		Burn: 1, ResolveAfter: time.Second,
	}
}

func stateOf(ev *Evaluator) string { return ev.Status(0).Alerts[0].State }

func TestAlertLifecyclePendingFiringResolved(t *testing.T) {
	reg := metrics.NewRegistry()
	clock := newFakeClock()
	pins := sampling.NewPinSet()
	ev := newEval(t, reg, clock, pins, testRule())

	ev.Eval() // baseline sample, no traffic
	if got := stateOf(ev); got != "inactive" {
		t.Fatalf("state = %s, want inactive", got)
	}

	// Healthy traffic only: stays inactive.
	clock.Advance(500 * time.Millisecond)
	observeN(reg, "Echo", time.Millisecond, 10, chainN(1), clock.now)
	ev.Eval()
	if got := stateOf(ev); got != "inactive" {
		t.Fatalf("state after healthy traffic = %s, want inactive", got)
	}

	// Regression: half the observations blow the objective. The fast
	// window is full at t=1s, so the first bad reading trips pending.
	clock.Advance(500 * time.Millisecond)
	observeN(reg, "Echo", 100*time.Millisecond, 10, chainN(7), clock.now)
	ev.Eval()
	if got := stateOf(ev); got != "pending" {
		t.Fatalf("state after regression = %s, want pending", got)
	}
	// The offending chain is harvested and pinned while pending.
	st := ev.Status(0)
	if len(st.Alerts[0].Exemplars) == 0 {
		t.Fatal("pending alert carries no exemplars")
	}
	if !pins.Pinned(uuid.UUID(chainN(7))) {
		t.Fatal("exemplar chain not pinned while pending")
	}

	// The regression sustains; once the slow window (2s) is full and
	// concurs, the alert fires.
	clock.Advance(500 * time.Millisecond)
	observeN(reg, "Echo", 100*time.Millisecond, 5, chainN(8), clock.now)
	ev.Eval()
	if got := stateOf(ev); got != "pending" {
		t.Fatalf("state before slow window fills = %s, want pending", got)
	}
	clock.Advance(500 * time.Millisecond)
	observeN(reg, "Echo", 100*time.Millisecond, 5, chainN(8), clock.now)
	ev.Eval()
	if got := stateOf(ev); got != "firing" {
		t.Fatalf("state = %s, want firing", got)
	}
	firing := ev.Firing()
	if len(firing) != 1 || firing[0].Rule != "echo-slo" {
		t.Fatalf("Firing() = %+v, want echo-slo", firing)
	}
	if firing[0].FastBurn < 1 {
		t.Fatalf("firing fast burn %v, want >= 1", firing[0].FastBurn)
	}
	if !strings.Contains(firing[0].Family, "causeway_chain_latency") {
		t.Fatalf("family = %s", firing[0].Family)
	}

	// Recovery: healthy traffic until both windows drain, then hold
	// ResolveAfter.
	for i := 0; i < 8; i++ {
		clock.Advance(500 * time.Millisecond)
		observeN(reg, "Echo", time.Millisecond, 10, chainN(1), clock.now)
		ev.Eval()
	}
	if got := stateOf(ev); got != "resolved" {
		t.Fatalf("state after recovery = %s, want resolved", got)
	}

	// Transition sequence is pending → firing → resolved.
	var seq []string
	for _, tr := range ev.Status(0).Transitions {
		seq = append(seq, tr.To.String())
	}
	want := []string{"pending", "firing", "resolved"}
	if len(seq) != len(want) {
		t.Fatalf("transitions = %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", seq, want)
		}
	}
}

func TestPendingBlipRecoversToInactive(t *testing.T) {
	reg := metrics.NewRegistry()
	clock := newFakeClock()
	// Slow window long enough that one bad burst cannot confirm.
	rule := testRule()
	rule.SlowWindow = time.Hour
	ev := newEval(t, reg, clock, nil, rule)

	ev.Eval()
	clock.Advance(time.Second)
	observeN(reg, "Echo", 100*time.Millisecond, 200, chainN(2), clock.now)
	observeN(reg, "Echo", time.Millisecond, 100, chainN(1), clock.now)
	ev.Eval()
	if got := stateOf(ev); got != "pending" {
		t.Fatalf("state = %s, want pending", got)
	}
	// Bad burst leaves the fast window; slow never confirmed.
	for i := 0; i < 4; i++ {
		clock.Advance(500 * time.Millisecond)
		observeN(reg, "Echo", time.Millisecond, 100, chainN(1), clock.now)
		ev.Eval()
	}
	if got := stateOf(ev); got != "inactive" {
		t.Fatalf("state after blip = %s, want inactive", got)
	}
}

func TestNoTrafficBurnsNothing(t *testing.T) {
	reg := metrics.NewRegistry()
	clock := newFakeClock()
	ev := newEval(t, reg, clock, nil, testRule())
	for i := 0; i < 10; i++ {
		ev.Eval()
		clock.Advance(time.Second)
	}
	st := ev.Status(0)
	if st.Alerts[0].State != "inactive" || st.Alerts[0].FastBurn != 0 {
		t.Fatalf("idle evaluator: %+v", st.Alerts[0])
	}
}

func TestErrorBudgetRule(t *testing.T) {
	reg := metrics.NewRegistry()
	clock := newFakeClock()
	rule := Rule{
		Name: "ship-errors", Iface: "Shipper", Target: 0.9,
		FastWindow: time.Second, SlowWindow: time.Second, Burn: 1,
	}
	ev := newEval(t, reg, clock, nil, rule)
	if ev.Rules()[0].Kind != KindErrors {
		t.Fatalf("kind = %v, want KindErrors", ev.Rules()[0].Kind)
	}
	ev.Eval()
	s := reg.Op(metrics.OpKey{Interface: "Shipper", Operation: "send"})
	s.Calls.Add(100)
	s.Errors.Add(50) // 50% errors vs a 10% budget: burn 5
	clock.Advance(time.Second)
	ev.Eval() // windows full: pending
	clock.Advance(500 * time.Millisecond)
	ev.Eval() // burst still inside both windows: firing
	if got := stateOf(ev); got != "firing" {
		t.Fatalf("error-budget state = %s, want firing", got)
	}
}

func TestOpLatencyRuleFamily(t *testing.T) {
	rule := Rule{Name: "x", Iface: "I", Op: "m", Objective: time.Millisecond}.withDefaults()
	if rule.Kind != KindOpLatency {
		t.Fatalf("kind = %v", rule.Kind)
	}
	if want := `causeway_op_skel{iface="I",op="m"}`; rule.Family() != want {
		t.Fatalf("family = %s, want %s", rule.Family(), want)
	}
}

func TestRuleValidation(t *testing.T) {
	bad := []Rule{
		{},          // no name
		{Name: "x"}, // no iface
		{Name: "x", Iface: "I", Objective: time.Millisecond, Target: 1.5}, // target out of range
		{Name: "x", Iface: "I", Objective: time.Millisecond, FastWindow: time.Minute, SlowWindow: time.Second},
	}
	for i, r := range bad {
		if _, err := NewEvaluator(Config{Registry: metrics.NewRegistry(), Rules: []Rule{r.withDefaults()}}); err == nil {
			t.Fatalf("rule %d validated unexpectedly: %+v", i, r)
		}
	}
}

func TestParseRules(t *testing.T) {
	src := `
# comment line
checkout-p99 iface=Checkout objective=250ms target=0.99 fast=1m slow=5m burn=2
lookup-skel  iface=Directory op=lookup objective=10ms
ship-errors  iface=Shipper errors target=0.999 resolve=30s exemplars=4
`
	rules, err := ParseRules(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("got %d rules", len(rules))
	}
	if rules[0].Objective != 250*time.Millisecond || rules[0].Burn != 2 || rules[0].SlowWindow != 5*time.Minute {
		t.Fatalf("rule 0 = %+v", rules[0])
	}
	if rules[1].Kind != KindOpLatency || rules[1].Op != "lookup" {
		t.Fatalf("rule 1 = %+v", rules[1])
	}
	if rules[2].Kind != KindErrors || rules[2].Target != 0.999 || rules[2].MaxExemplars != 4 || rules[2].ResolveAfter != 30*time.Second {
		t.Fatalf("rule 2 = %+v", rules[2])
	}

	for _, badSrc := range []string{
		"", "justaname notakv", "r iface=I objective=xyz", "r iface=I objective=1ms zzz=1",
	} {
		if _, err := ParseRules(strings.NewReader(badSrc)); err == nil {
			t.Fatalf("ParseRules(%q) accepted", badSrc)
		}
	}
}

func TestServeAlertzCursor(t *testing.T) {
	reg := metrics.NewRegistry()
	clock := newFakeClock()
	ev := newEval(t, reg, clock, nil, testRule())
	ev.Eval()
	clock.Advance(time.Second)
	observeN(reg, "Echo", 100*time.Millisecond, 20, chainN(3), clock.now)
	ev.Eval() // fast window full: pending
	clock.Advance(time.Second)
	observeN(reg, "Echo", 100*time.Millisecond, 20, chainN(3), clock.now)
	ev.Eval() // slow window full and concurring: firing

	req := httptest.NewRequest("GET", "/alertz", nil)
	rec := httptest.NewRecorder()
	ev.ServeAlertz(rec, req)
	var st Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("bad /alertz JSON: %v\n%s", err, rec.Body.String())
	}
	if len(st.Transitions) != 2 || st.Cursor != 2 {
		t.Fatalf("full page: %d transitions, cursor %d", len(st.Transitions), st.Cursor)
	}
	if st.Alerts[0].State != "firing" {
		t.Fatalf("alert state = %s", st.Alerts[0].State)
	}
	if len(st.Alerts[0].Exemplars) == 0 || !strings.Contains(st.Alerts[0].Exemplars[0].Chain, "-") {
		t.Fatalf("exemplars = %+v", st.Alerts[0].Exemplars)
	}

	// Cursor resume: only transitions after `since` come back.
	req = httptest.NewRequest("GET", "/alertz?since="+strings.TrimSpace("1"), nil)
	rec = httptest.NewRecorder()
	ev.ServeAlertz(rec, req)
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Transitions) != 1 || st.Transitions[0].To != StateFiring {
		t.Fatalf("cursor page: %+v", st.Transitions)
	}

	// FetchStatus round-trips over a real listener.
	mux := http.NewServeMux()
	mux.HandleFunc("/alertz", ev.ServeAlertz)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	got, err := FetchStatus(srv.URL, 0, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Alerts) != 1 || got.Alerts[0].State != "firing" {
		t.Fatalf("FetchStatus = %+v", got.Alerts)
	}
}
