package alerting

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// ParseRules reads the declarative rules format: one rule per line,
// blank lines and #-comments skipped. A line is a rule name followed by
// key=value fields:
//
//	# name       selector + objective            tuning
//	checkout-p99 iface=Checkout objective=250ms  target=0.99 fast=1m slow=5m burn=2
//	lookup-skel  iface=Directory op=lookup objective=10ms
//	ship-errors  iface=Shipper errors target=0.999
//
// Fields: iface (required), op, objective (latency rules), the bare word
// `errors` (error-budget rule over calls/errors counters), target,
// fast, slow, resolve (durations), burn (threshold multiple), exemplars
// (pin cap). Defaults are documented on Rule.
func ParseRules(r io.Reader) ([]Rule, error) {
	var rules []Rule
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		rule := Rule{Name: fields[0]}
		for _, f := range fields[1:] {
			if f == "errors" {
				rule.Objective = 0 // explicit: error-budget kind
				continue
			}
			k, v, ok := strings.Cut(f, "=")
			if !ok {
				return nil, fmt.Errorf("rules line %d: field %q is not key=value", lineNo, f)
			}
			var err error
			switch k {
			case "iface":
				rule.Iface = v
			case "op":
				rule.Op = v
			case "objective":
				rule.Objective, err = time.ParseDuration(v)
			case "target":
				rule.Target, err = strconv.ParseFloat(v, 64)
			case "fast":
				rule.FastWindow, err = time.ParseDuration(v)
			case "slow":
				rule.SlowWindow, err = time.ParseDuration(v)
			case "resolve":
				rule.ResolveAfter, err = time.ParseDuration(v)
			case "burn":
				rule.Burn, err = strconv.ParseFloat(v, 64)
			case "exemplars":
				rule.MaxExemplars, err = strconv.Atoi(v)
			default:
				return nil, fmt.Errorf("rules line %d: unknown field %q", lineNo, k)
			}
			if err != nil {
				return nil, fmt.Errorf("rules line %d: %s: %v", lineNo, k, err)
			}
		}
		rule = rule.withDefaults()
		if err := rule.validate(); err != nil {
			return nil, fmt.Errorf("rules line %d: %v", lineNo, err)
		}
		rules = append(rules, rule)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("no rules found")
	}
	return rules, nil
}

// ParseRulesFile is ParseRules over a file.
func ParseRulesFile(path string) ([]Rule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rules, err := ParseRules(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return rules, nil
}
