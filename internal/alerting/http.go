package alerting

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// ServeAlertz is the /alertz handler: a JSON Status snapshot. The
// `since` query parameter is a transition cursor — pass the Cursor of
// the previous response to receive only newer transitions, the same
// contract as streamrecon's /feedz.
func (e *Evaluator) ServeAlertz(w http.ResponseWriter, r *http.Request) {
	var since uint64
	if s := r.URL.Query().Get("since"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			http.Error(w, "bad since cursor", http.StatusBadRequest)
			return
		}
		since = v
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(e.Status(since))
}

// FetchStatus polls a debug server's /alertz — the causectl client side.
// addr is a host:port or full http URL.
func FetchStatus(addr string, since uint64, timeout time.Duration) (Status, error) {
	base := addr
	if len(base) < 7 || base[:7] != "http://" {
		base = "http://" + base
	}
	url := fmt.Sprintf("%s/alertz?since=%d", base, since)
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(url)
	if err != nil {
		return Status{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Status{}, fmt.Errorf("%s: %s", url, resp.Status)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return Status{}, fmt.Errorf("%s: %v", url, err)
	}
	return st, nil
}
