// Package alerting is the SLO plane over the live metrics registry: a
// declarative rule names a latency objective (or error budget) for an
// interface or operation, and a multi-window burn-rate evaluator walks
// the registry's histograms and counters, driving each rule through a
// pending → firing → resolved state machine.
//
// Burn rate is the classic SRE formulation: over a window W, the
// fraction of observations that violated the objective, divided by the
// rule's error budget (1 - target). Burn 1 means "spending the budget
// exactly as fast as the SLO allows"; burn 10 exhausts a 30-day budget
// in 3 days. A rule goes pending when the fast window burns above the
// threshold (sensitive, quick), and fires only when the slow window
// concurs (a sustained regression, not a blip) — the standard
// multi-window guard against flapping.
//
// What makes the plane more than a threshold check is the exemplar
// loop: while a rule is pending or firing, the evaluator harvests the
// exemplar chains stamped into the offending histogram's over-objective
// buckets (metrics.Histogram.ExemplarsAbove) and pins them into a
// sampling.PinSet, so tail sampling and assembler shedding cannot drop
// the very chains that explain the alert. A fired alert therefore
// carries chain UUIDs that `causectl show` resolves to complete DSCGs.
package alerting

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"causeway/internal/metrics"
	"causeway/internal/sampling"
	"causeway/internal/uuid"
)

// Kind selects which registry series a rule evaluates.
type Kind int

const (
	// KindChainLatency watches the per-interface compensated chain
	// latency digests (causeway_chain_latency) — the numbers that agree
	// with the offline analyzer. The default.
	KindChainLatency Kind = iota
	// KindOpLatency watches one operation's raw skeleton service time
	// (causeway_op_skel). Selected by setting Op on a latency rule.
	KindOpLatency
	// KindErrors watches an error budget: errors over calls for one
	// operation, or summed over every operation of an interface.
	KindErrors
)

// Rule is one declarative SLO: "target of requests meet the objective,
// alert when the budget burns faster than Burn across both windows".
type Rule struct {
	// Name identifies the rule in transitions, /alertz, and logs.
	Name string
	// Iface selects the interface; required.
	Iface string
	// Op narrows a latency rule to one operation's skeleton time, or an
	// error rule to one operation's counters. Empty means the interface
	// chain-latency digest (latency) or all the interface's ops (errors).
	Op string
	// Kind is derived at validation: errors when Objective is zero,
	// otherwise chain/op latency depending on Op.
	Kind Kind
	// Objective is the latency objective; observations above it burn the
	// budget. Zero selects an error-budget rule.
	Objective time.Duration
	// Target is the SLO fraction in (0,1), e.g. 0.99: the error budget
	// is 1-Target. Defaults to 0.99.
	Target float64
	// FastWindow (default 1m) trips pending; SlowWindow (default 5x
	// fast) confirms firing.
	FastWindow time.Duration
	SlowWindow time.Duration
	// Burn is the burn-rate threshold both windows compare against.
	// Defaults to 1 (any sustained overspend alerts).
	Burn float64
	// ResolveAfter is how long both burns must stay below the threshold
	// before a firing alert resolves. Defaults to FastWindow.
	ResolveAfter time.Duration
	// MaxExemplars caps the chains pinned per incident. Defaults to 8.
	MaxExemplars int
}

// withDefaults fills the optional fields.
func (r Rule) withDefaults() Rule {
	if r.Target == 0 {
		r.Target = 0.99
	}
	if r.FastWindow == 0 {
		r.FastWindow = time.Minute
	}
	if r.SlowWindow == 0 {
		r.SlowWindow = 5 * r.FastWindow
	}
	if r.Burn == 0 {
		r.Burn = 1
	}
	if r.ResolveAfter == 0 {
		r.ResolveAfter = r.FastWindow
	}
	if r.MaxExemplars == 0 {
		r.MaxExemplars = 8
	}
	if r.Objective == 0 {
		r.Kind = KindErrors
	} else if r.Op != "" {
		r.Kind = KindOpLatency
	} else {
		r.Kind = KindChainLatency
	}
	return r
}

// validate rejects rules the evaluator cannot run.
func (r Rule) validate() error {
	if r.Name == "" {
		return fmt.Errorf("rule missing name")
	}
	if r.Iface == "" {
		return fmt.Errorf("rule %s: iface required", r.Name)
	}
	if r.Target <= 0 || r.Target >= 1 {
		return fmt.Errorf("rule %s: target %v outside (0,1)", r.Name, r.Target)
	}
	if r.SlowWindow < r.FastWindow {
		return fmt.Errorf("rule %s: slow window %v shorter than fast %v", r.Name, r.SlowWindow, r.FastWindow)
	}
	if r.Burn <= 0 {
		return fmt.Errorf("rule %s: burn threshold must be positive", r.Name)
	}
	return nil
}

// Family names the metric family the rule watches, in exposition form —
// the handle an operator pastes into a /metrics scrape.
func (r Rule) Family() string {
	switch r.Kind {
	case KindOpLatency:
		return fmt.Sprintf("causeway_op_skel{iface=%q,op=%q}", r.Iface, r.Op)
	case KindErrors:
		if r.Op != "" {
			return fmt.Sprintf("causeway_op_errors_total{iface=%q,op=%q}", r.Iface, r.Op)
		}
		return fmt.Sprintf("causeway_op_errors_total{iface=%q}", r.Iface)
	default:
		return fmt.Sprintf("causeway_chain_latency{iface=%q}", r.Iface)
	}
}

// State is one rule's position in the alert lifecycle.
type State int

const (
	StateInactive State = iota
	StatePending
	StateFiring
	StateResolved
)

func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateFiring:
		return "firing"
	case StateResolved:
		return "resolved"
	default:
		return "inactive"
	}
}

// MarshalJSON renders the state as its name, so /alertz is greppable.
func (s State) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON accepts a state name (the /alertz client side).
func (s *State) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "pending":
		*s = StatePending
	case "firing":
		*s = StateFiring
	case "resolved":
		*s = StateResolved
	case "inactive":
		*s = StateInactive
	default:
		return fmt.Errorf("unknown alert state %q", name)
	}
	return nil
}

// Transition is one state change, kept in a bounded ring for /alertz
// cursors and fire/resolve log lines.
type Transition struct {
	ID       uint64    `json:"id"`
	Rule     string    `json:"rule"`
	Family   string    `json:"family"`
	From     State     `json:"from"`
	To       State     `json:"to"`
	At       time.Time `json:"at"`
	FastBurn float64   `json:"fast_burn"`
	SlowBurn float64   `json:"slow_burn"`
	// Exemplars are the incident's chain UUIDs known at transition time.
	Exemplars []string `json:"exemplars,omitempty"`
}

// Config wires an Evaluator.
type Config struct {
	// Registry is the metrics plane to evaluate; required. Exemplar
	// harvesting additionally needs Registry.ArmExemplars() — the
	// evaluator arms it itself at construction.
	Registry *metrics.Registry
	// Rules are the SLOs to evaluate; validated at construction.
	Rules []Rule
	// Clock overrides time.Now for deterministic tests.
	Clock func() time.Time
	// Pins, when set, receives the exemplar chains of pending and firing
	// alerts so retention keeps them (sampling.TailPolicy.Pins).
	Pins *sampling.PinSet
	// OnTransition, when set, is called for every state change, outside
	// the evaluator lock, in transition order.
	OnTransition func(Transition)
	// MaxTransitions bounds the transition ring. Zero selects 256.
	MaxTransitions int
}

// sample is one Eval's cumulative reading of a rule's series.
type sample struct {
	t     time.Time
	total uint64
	bad   uint64
}

// ruleState is one rule's evaluation state.
type ruleState struct {
	rule       Rule
	samples    []sample
	state      State
	since      time.Time // when the current state was entered
	firedAt    time.Time
	resolvedAt time.Time
	fastBurn   float64
	slowBurn   float64
	// belowSince tracks how long a firing rule has been healthy, for the
	// ResolveAfter hysteresis.
	belowSince time.Time
	// incidentStart is when the current incident went pending; exemplars
	// stamped after (incidentStart - FastWindow) belong to it.
	incidentStart time.Time
	exemplars     []metrics.Exemplar
	exSeen        map[metrics.ChainID]bool
}

// Evaluator drives the rules over the registry. Eval is called
// periodically by the owner (collectd's reporter loop, a Process
// ticker); Status and ServeAlertz snapshot it concurrently.
type Evaluator struct {
	cfg   Config
	clock func() time.Time

	mu          sync.Mutex
	rules       []*ruleState
	transitions []Transition
	nextID      uint64
}

// NewEvaluator validates the rules, arms exemplar capture on the
// registry, and returns an evaluator ready for Eval.
func NewEvaluator(cfg Config) (*Evaluator, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("alerting: Registry required")
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	e := &Evaluator{cfg: cfg, clock: clock}
	for _, r := range cfg.Rules {
		r = r.withDefaults()
		if err := r.validate(); err != nil {
			return nil, err
		}
		e.rules = append(e.rules, &ruleState{rule: r})
	}
	if len(e.rules) == 0 {
		return nil, fmt.Errorf("alerting: no rules")
	}
	cfg.Registry.ArmExemplars()
	return e, nil
}

// Rules returns the validated rules with defaults applied.
func (e *Evaluator) Rules() []Rule {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Rule, len(e.rules))
	for i, rs := range e.rules {
		out[i] = rs.rule
	}
	return out
}

// observe reads a rule's cumulative (total, bad) counts off the
// registry, and the histogram to harvest exemplars from (nil for error
// rules — counters carry no exemplars).
func (e *Evaluator) observe(r Rule) (total, bad uint64, h *metrics.Histogram) {
	switch r.Kind {
	case KindOpLatency:
		s := e.cfg.Registry.Op(metrics.OpKey{Interface: r.Iface, Operation: r.Op})
		return s.SkelTime.Count(), s.SkelTime.CountOver(r.Objective), &s.SkelTime
	case KindErrors:
		if r.Op != "" {
			s := e.cfg.Registry.Op(metrics.OpKey{Interface: r.Iface, Operation: r.Op})
			return s.Calls.Load(), s.Errors.Load(), nil
		}
		e.cfg.Registry.VisitOps(func(k metrics.OpKey, s *metrics.OpStats) {
			if k.Interface == r.Iface {
				total += s.Calls.Load()
				bad += s.Errors.Load()
			}
		})
		return total, bad, nil
	default:
		ih := e.cfg.Registry.Iface(r.Iface)
		return ih.Count(), ih.CountOver(r.Objective), ih
	}
}

// burn computes the burn rate over the window ending at now: the bad
// fraction of the window's new observations divided by the error
// budget. With no traffic in the window the budget is not burning, and
// a window the sample series does not yet span burns 0 — the evaluator
// stays quiet until it has real history, so a cold start cannot fire
// the slow window off the same burst the fast window saw (the whole
// point of the multi-window guard).
func (rs *ruleState) burn(now time.Time, window time.Duration) float64 {
	if len(rs.samples) < 2 {
		return 0
	}
	last := rs.samples[len(rs.samples)-1]
	start := now.Add(-window)
	if rs.samples[0].t.After(start) {
		return 0 // window not yet full
	}
	// Reference point: the newest sample at or before the window start.
	ref := rs.samples[0]
	for _, s := range rs.samples[1:] {
		if s.t.After(start) {
			break
		}
		ref = s
	}
	dTotal := last.total - ref.total
	if dTotal == 0 {
		return 0
	}
	dBad := last.bad - ref.bad
	budget := 1 - rs.rule.Target
	return (float64(dBad) / float64(dTotal)) / budget
}

// prune drops samples no window can reference anymore: everything older
// than the slow window except the newest such sample (the reference).
func (rs *ruleState) prune(now time.Time) {
	start := now.Add(-rs.rule.SlowWindow)
	cut := 0
	for cut+1 < len(rs.samples) && !rs.samples[cut+1].t.After(start) {
		cut++
	}
	if cut > 0 {
		rs.samples = append(rs.samples[:0], rs.samples[cut:]...)
	}
}

// Eval takes one reading of every rule and advances the state machines.
// Call it periodically — several times per FastWindow, or the windows
// have too few points to react.
func (e *Evaluator) Eval() {
	now := e.clock()
	var fired []Transition

	e.mu.Lock()
	for _, rs := range e.rules {
		total, bad, h := e.observe(rs.rule)
		rs.samples = append(rs.samples, sample{t: now, total: total, bad: bad})
		rs.prune(now)
		rs.fastBurn = rs.burn(now, rs.rule.FastWindow)
		rs.slowBurn = rs.burn(now, rs.rule.SlowWindow)

		over := rs.rule.Burn
		switch rs.state {
		case StateInactive, StateResolved:
			if rs.fastBurn >= over {
				rs.incidentStart = now
				rs.exemplars = nil
				rs.exSeen = make(map[metrics.ChainID]bool)
				fired = append(fired, e.shiftLocked(rs, StatePending, now))
			}
		case StatePending:
			switch {
			case rs.fastBurn >= over && rs.slowBurn >= over:
				rs.firedAt = now
				fired = append(fired, e.shiftLocked(rs, StateFiring, now))
			case rs.fastBurn < over:
				// The budget recovered before the slow window concurred:
				// a blip, not an incident.
				fired = append(fired, e.shiftLocked(rs, StateInactive, now))
			}
		case StateFiring:
			if rs.fastBurn < over && rs.slowBurn < over {
				if rs.belowSince.IsZero() {
					rs.belowSince = now
				}
				if now.Sub(rs.belowSince) >= rs.rule.ResolveAfter {
					rs.resolvedAt = now
					fired = append(fired, e.shiftLocked(rs, StateResolved, now))
				}
			} else {
				rs.belowSince = time.Time{}
			}
		}

		if (rs.state == StatePending || rs.state == StateFiring) && h != nil {
			e.harvestLocked(rs, h)
		}
	}
	e.mu.Unlock()

	if e.cfg.OnTransition != nil {
		for _, t := range fired {
			e.cfg.OnTransition(t)
		}
	}
}

// shiftLocked moves a rule to a new state and records the transition.
func (e *Evaluator) shiftLocked(rs *ruleState, to State, now time.Time) Transition {
	from := rs.state
	rs.state = to
	rs.since = now
	rs.belowSince = time.Time{}
	e.nextID++
	t := Transition{
		ID: e.nextID, Rule: rs.rule.Name, Family: rs.rule.Family(),
		From: from, To: to, At: now,
		FastBurn: rs.fastBurn, SlowBurn: rs.slowBurn,
		Exemplars: rs.exemplarChains(),
	}
	maxT := e.cfg.MaxTransitions
	if maxT <= 0 {
		maxT = 256
	}
	e.transitions = append(e.transitions, t)
	if len(e.transitions) > maxT {
		e.transitions = append(e.transitions[:0], e.transitions[len(e.transitions)-maxT:]...)
	}
	return t
}

// harvestLocked collects fresh over-objective exemplars into the
// incident and pins them. The freshness floor reaches one fast window
// before the incident went pending — those observations are what tripped
// it.
func (e *Evaluator) harvestLocked(rs *ruleState, h *metrics.Histogram) {
	if len(rs.exSeen) >= rs.rule.MaxExemplars {
		return
	}
	floor := rs.incidentStart.Add(-rs.rule.FastWindow).UnixNano()
	for _, ex := range h.ExemplarsAbove(rs.rule.Objective, floor, rs.rule.MaxExemplars) {
		if rs.exSeen[ex.Chain] || len(rs.exSeen) >= rs.rule.MaxExemplars {
			continue
		}
		rs.exSeen[ex.Chain] = true
		rs.exemplars = append(rs.exemplars, ex)
		if e.cfg.Pins != nil {
			e.cfg.Pins.Pin(uuid.UUID(ex.Chain))
		}
	}
}

// exemplarChains renders the incident's chains as UUID strings.
func (rs *ruleState) exemplarChains() []string {
	if len(rs.exemplars) == 0 {
		return nil
	}
	out := make([]string, len(rs.exemplars))
	for i, ex := range rs.exemplars {
		out[i] = ex.Chain.String()
	}
	return out
}

// ExemplarRef is one harvested exemplar in a status snapshot.
type ExemplarRef struct {
	Chain string        `json:"chain"`
	Value time.Duration `json:"value_ns"`
	When  time.Time     `json:"when"`
}

// Alert is one rule's status snapshot.
type Alert struct {
	Rule       string        `json:"rule"`
	Family     string        `json:"family"`
	State      string        `json:"state"`
	Since      time.Time     `json:"since"`
	FiredAt    time.Time     `json:"fired_at,omitzero"`
	ResolvedAt time.Time     `json:"resolved_at,omitzero"`
	FastBurn   float64       `json:"fast_burn"`
	SlowBurn   float64       `json:"slow_burn"`
	Objective  time.Duration `json:"objective_ns,omitempty"`
	Target     float64       `json:"target"`
	Burn       float64       `json:"burn_threshold"`
	FastWindow time.Duration `json:"fast_window_ns"`
	SlowWindow time.Duration `json:"slow_window_ns"`
	Exemplars  []ExemplarRef `json:"exemplars,omitempty"`
}

// Status is the full /alertz snapshot.
type Status struct {
	Now time.Time `json:"now"`
	// Alerts is every rule's current state, rule order preserved.
	Alerts []Alert `json:"alerts"`
	// Transitions are the retained state changes with ID > the request
	// cursor, ascending; Cursor is the newest retained ID (pass it back
	// as ?since= to poll incrementally).
	Transitions []Transition `json:"transitions"`
	Cursor      uint64       `json:"cursor"`
}

// Status snapshots every rule and the transitions after sinceID.
func (e *Evaluator) Status(sinceID uint64) Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := Status{Now: e.clock(), Cursor: e.nextID}
	for _, rs := range e.rules {
		a := Alert{
			Rule: rs.rule.Name, Family: rs.rule.Family(), State: rs.state.String(),
			Since: rs.since, FiredAt: rs.firedAt, ResolvedAt: rs.resolvedAt,
			FastBurn: rs.fastBurn, SlowBurn: rs.slowBurn,
			Objective: rs.rule.Objective, Target: rs.rule.Target, Burn: rs.rule.Burn,
			FastWindow: rs.rule.FastWindow, SlowWindow: rs.rule.SlowWindow,
		}
		for _, ex := range rs.exemplars {
			a.Exemplars = append(a.Exemplars, ExemplarRef{
				Chain: ex.Chain.String(), Value: ex.Value, When: time.Unix(0, ex.When),
			})
		}
		st.Alerts = append(st.Alerts, a)
	}
	for _, t := range e.transitions {
		if t.ID > sinceID {
			st.Transitions = append(st.Transitions, t)
		}
	}
	return st
}

// Firing reports the rules currently in StateFiring.
func (e *Evaluator) Firing() []Alert {
	st := e.Status(^uint64(0))
	var out []Alert
	for _, a := range st.Alerts {
		if a.State == StateFiring.String() {
			out = append(out, a)
		}
	}
	return out
}

// WriteMetrics renders the alert plane's own series — how many rules
// are in each state — for RegisterSource.
func (e *Evaluator) WriteMetrics(w io.Writer) {
	counts := map[State]int{}
	e.mu.Lock()
	for _, rs := range e.rules {
		counts[rs.state]++
	}
	transitions := e.nextID
	e.mu.Unlock()
	fmt.Fprintf(w, "causeway_alerts_inactive %d\n", counts[StateInactive])
	fmt.Fprintf(w, "causeway_alerts_pending %d\n", counts[StatePending])
	fmt.Fprintf(w, "causeway_alerts_firing %d\n", counts[StateFiring])
	fmt.Fprintf(w, "causeway_alerts_resolved %d\n", counts[StateResolved])
	fmt.Fprintf(w, "causeway_alerts_transitions_total %d\n", transitions)
}
