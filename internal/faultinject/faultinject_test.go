package faultinject

import (
	"errors"
	"testing"
	"time"

	"causeway/internal/transport"
)

func echoServer(t *testing.T, n *transport.InprocNetwork, name string) {
	t.Helper()
	srv, err := n.Listen(name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	if err := srv.Serve(func(conn transport.ConnID, req transport.Request, respond transport.Responder) {
		respond(transport.Reply{Status: transport.StatusOK, Body: req.Body})
	}); err != nil {
		t.Fatal(err)
	}
}

// TestScheduleDeterminism drives two identically-seeded injectors through
// the same workload and asserts the schedules — both the counters and the
// per-call outcome sequence — are identical. This is the property the CI
// seed matrix leans on.
func TestScheduleDeterminism(t *testing.T) {
	plan := Plan{
		Seed:      42,
		DropProb:  0.2,
		DelayProb: 0.1,
		Delay:     time.Microsecond,
	}
	runOnce := func() ([]bool, Stats) {
		n := transport.NewInprocNetwork()
		echoServer(t, n, "echo")
		inner, err := n.Dial("echo")
		if err != nil {
			t.Fatal(err)
		}
		in := New(plan)
		c := in.WrapClient(inner)
		defer c.Close()
		outcomes := make([]bool, 0, 200)
		for i := 0; i < 200; i++ {
			_, err := c.Call(transport.Request{Operation: "op", Body: []byte{byte(i)}})
			outcomes = append(outcomes, err == nil)
		}
		return outcomes, in.Stats()
	}
	o1, s1 := runOnce()
	o2, s2 := runOnce()
	if s1 != s2 {
		t.Fatalf("stats diverge across identically-seeded runs: %+v vs %+v", s1, s2)
	}
	if s1.Drops == 0 {
		t.Fatalf("plan with DropProb=0.2 over 200 ops injected no drops: %+v", s1)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("outcome %d diverges across identically-seeded runs", i)
		}
	}
}

// TestSeedsDiffer guards against the schedule ignoring the seed.
func TestSeedsDiffer(t *testing.T) {
	plan := Plan{DropProb: 0.5}
	draws := func(seed int64) []Kind {
		p := plan
		p.Seed = seed
		in := New(p)
		ks := make([]Kind, 64)
		for i := range ks {
			ks[i] = in.next()
		}
		return ks
	}
	a, b := draws(1), draws(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-draw schedules")
	}
}

// TestAfterWindow asserts the first Plan.After operations pass untouched.
func TestAfterWindow(t *testing.T) {
	in := New(Plan{Seed: 7, DropProb: 1.0, After: 10})
	for i := 0; i < 10; i++ {
		if k := in.next(); k != None {
			t.Fatalf("op %d inside After window drew %v, want none", i, k)
		}
	}
	if k := in.next(); k != Drop {
		t.Fatalf("first op past After window drew %v, want drop with DropProb=1", k)
	}
}

// TestClientDropHonorsDeadline: a dropped call with a deadline surfaces as
// the transport's own deadline error after waiting it out — a fault-run
// caller cannot distinguish injection from a real network drop.
func TestClientDropHonorsDeadline(t *testing.T) {
	n := transport.NewInprocNetwork()
	echoServer(t, n, "echo")
	inner, err := n.Dial("echo")
	if err != nil {
		t.Fatal(err)
	}
	c := New(Plan{Seed: 1, DropProb: 1.0}).WrapClient(inner)
	defer c.Close()
	start := time.Now()
	_, err = c.Call(transport.Request{Operation: "op", Timeout: 20 * time.Millisecond})
	if !errors.Is(err, transport.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("dropped call returned before the deadline elapsed")
	}
	// Without a deadline the drop fails fast with the injector's own error
	// instead of hanging the test forever.
	if _, err := c.Call(transport.Request{Operation: "op"}); !errors.Is(err, ErrInjected) {
		t.Fatalf("deadline-less drop: err = %v, want ErrInjected", err)
	}
}

// TestServerDropNeedsClientDeadline wires the handler wrapper over real
// TCP: the server accepts and never replies, and only the client deadline
// ends the call — the acceptance scenario for hung servers.
func TestServerDropNeedsClientDeadline(t *testing.T) {
	srv, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	in := New(Plan{Seed: 3, DropProb: 1.0})
	if err := srv.Serve(in.WrapHandler(func(conn transport.ConnID, req transport.Request, respond transport.Responder) {
		respond(transport.Reply{Status: transport.StatusOK})
	})); err != nil {
		t.Fatal(err)
	}
	c, err := transport.DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const timeout = 50 * time.Millisecond
	start := time.Now()
	_, err = c.Call(transport.Request{Operation: "op", Timeout: timeout})
	if !errors.Is(err, transport.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed >= 2*timeout {
		t.Fatalf("deadline took %v, want < %v", elapsed, 2*timeout)
	}
	if n := c.Pending(); n != 0 {
		t.Fatalf("pending map holds %d entries, want 0", n)
	}
}

// TestDuplicateReplyDiscarded: the handler wrapper responds twice; the
// client must deliver exactly one reply and count the other as discarded.
func TestDuplicateReplyDiscarded(t *testing.T) {
	srv, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	in := New(Plan{Seed: 5, DuplicateProb: 1.0})
	if err := srv.Serve(in.WrapHandler(func(conn transport.ConnID, req transport.Request, respond transport.Responder) {
		respond(transport.Reply{Status: transport.StatusOK, Body: req.Body})
	})); err != nil {
		t.Fatal(err)
	}
	c, err := transport.DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep, err := c.Call(transport.Request{Operation: "op", Body: []byte("once"), Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if string(rep.Body) != "once" {
		t.Fatalf("reply body = %q", rep.Body)
	}
	deadline := time.Now().Add(2 * time.Second)
	for c.Discarded() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("duplicate reply never counted as discarded")
		}
		time.Sleep(time.Millisecond)
	}
	if got := in.Stats().Duplicates; got != 1 {
		t.Fatalf("injector counted %d duplicates, want 1", got)
	}
}

// TestDisconnectSeversClient: after an injected disconnect the underlying
// client is closed and further calls fail.
func TestDisconnectSeversClient(t *testing.T) {
	srv, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Serve(func(conn transport.ConnID, req transport.Request, respond transport.Responder) {
		respond(transport.Reply{Status: transport.StatusOK})
	}); err != nil {
		t.Fatal(err)
	}
	inner, err := transport.DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c := New(Plan{Seed: 9, DisconnectProb: 1.0}).WrapClient(inner)
	if _, err := c.Call(transport.Request{Operation: "op"}); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if _, err := inner.Call(transport.Request{Operation: "op"}); err == nil {
		t.Fatal("underlying client survived an injected disconnect")
	}
}

// TestCorruptBytesDeterministic: equal seeds corrupt identically, and the
// input is never modified in place.
func TestCorruptBytesDeterministic(t *testing.T) {
	orig := []byte("payload-bytes")
	a := New(Plan{Seed: 11}).CorruptBytes(orig)
	b := New(Plan{Seed: 11}).CorruptBytes(orig)
	if string(a) != string(b) {
		t.Fatalf("corruption diverges across equal seeds: %q vs %q", a, b)
	}
	if string(orig) != "payload-bytes" {
		t.Fatal("CorruptBytes modified its input")
	}
	if string(a) == string(orig) {
		t.Fatal("CorruptBytes returned the input unchanged")
	}
}
