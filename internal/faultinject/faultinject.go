// Package faultinject makes transport-level failure deterministic and
// therefore testable: a seeded Injector draws one fault decision per
// operation from a private PRNG stream and applies it through wrappers
// around transport.Client (caller side) and transport.Handler (servant
// side). The same seed always yields the same schedule, so a test — or a
// CI seed matrix — can assert exact failure counts and exact analyzer
// warning counts across runs.
//
// The injectable faults are the ones a monitored deployment actually
// meets: added latency (Delay), a message that never arrives (Drop), a
// peer vanishing mid-conversation (Disconnect), payload corruption
// (Corrupt), and a duplicated reply (Duplicate). Each wrapper applies the
// kinds that make sense on its side of the wire and treats the rest as
// the nearest equivalent (documented per wrapper).
package faultinject

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"causeway/internal/transport"
)

// Kind classifies one injected fault.
type Kind uint8

// Fault kinds drawn by the schedule.
const (
	// None passes the operation through untouched.
	None Kind = iota
	// Delay sleeps Plan.Delay before the operation proceeds.
	Delay
	// Drop loses the message: a call never reaches the peer (client side)
	// or is received and never answered (server side).
	Drop
	// Disconnect severs the connection before the operation.
	Disconnect
	// Corrupt mangles the payload bytes.
	Corrupt
	// Duplicate sends the reply twice (server side).
	Duplicate
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Delay:
		return "delay"
	case Drop:
		return "drop"
	case Disconnect:
		return "disconnect"
	case Corrupt:
		return "corrupt"
	case Duplicate:
		return "duplicate"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ErrInjected marks an error manufactured by the injector rather than the
// real transport. Match with errors.Is.
var ErrInjected = fmt.Errorf("faultinject: injected fault")

// Plan is a fault schedule: per-kind probabilities drawn cumulatively
// (their sum must be <= 1; the remainder is None) plus parameters. The
// zero Plan injects nothing.
type Plan struct {
	// Seed fixes the PRNG stream; equal seeds replay equal schedules.
	Seed int64
	// After lets the first N operations through untouched — handshakes and
	// registrations survive so the workload gets going before faults land.
	After int
	// Probabilities per operation, drawn cumulatively in this order.
	DelayProb, DropProb, DisconnectProb, CorruptProb, DuplicateProb float64
	// Delay is the fixed latency Delay injects. It is deliberately not
	// randomized: a deterministic schedule must replay wall-clock-identically.
	Delay time.Duration
}

// Stats counts what the injector actually did.
type Stats struct {
	Ops, Delays, Drops, Disconnects, Corrupts, Duplicates uint64
}

// Injector draws fault decisions from one seeded stream. Safe for
// concurrent use; note that concurrent callers race for positions in the
// stream, so fully deterministic schedules require either single-threaded
// use or one Injector per goroutine (derive per-client seeds from a base).
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	plan  Plan
	seen  int
	stats Stats
}

// New builds an injector for plan.
func New(plan Plan) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(plan.Seed)), plan: plan}
}

// next draws the fault for the next operation: exactly one PRNG draw per
// operation keeps stream positions aligned across kinds.
func (in *Injector) next() Kind {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.seen++
	in.stats.Ops++
	f := in.rng.Float64()
	if in.seen <= in.plan.After {
		return None
	}
	p := in.plan
	switch {
	case f < p.DelayProb:
		in.stats.Delays++
		return Delay
	case f < p.DelayProb+p.DropProb:
		in.stats.Drops++
		return Drop
	case f < p.DelayProb+p.DropProb+p.DisconnectProb:
		in.stats.Disconnects++
		return Disconnect
	case f < p.DelayProb+p.DropProb+p.DisconnectProb+p.CorruptProb:
		in.stats.Corrupts++
		return Corrupt
	case f < p.DelayProb+p.DropProb+p.DisconnectProb+p.CorruptProb+p.DuplicateProb:
		in.stats.Duplicates++
		return Duplicate
	default:
		return None
	}
}

// Stats snapshots the injection counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// WriteMetrics renders the injection counters in the text exposition
// format; register it as a metrics.Registry source to surface injected
// faults on /metrics next to the loss counters they cause.
func (in *Injector) WriteMetrics(w io.Writer) {
	WriteMetricsMulti(w, in)
}

// WriteMetricsMulti renders the summed counters of several injectors as
// one series family — the form a deployment with one injector per client
// registers, since duplicate series names in one exposition are invalid.
func WriteMetricsMulti(w io.Writer, injectors ...*Injector) {
	var st Stats
	for _, in := range injectors {
		s := in.Stats()
		st.Ops += s.Ops
		st.Delays += s.Delays
		st.Drops += s.Drops
		st.Disconnects += s.Disconnects
		st.Corrupts += s.Corrupts
		st.Duplicates += s.Duplicates
	}
	fmt.Fprintf(w, "causeway_fault_ops_total %d\n", st.Ops)
	for _, kv := range []struct {
		kind string
		n    uint64
	}{
		{"delay", st.Delays},
		{"drop", st.Drops},
		{"disconnect", st.Disconnects},
		{"corrupt", st.Corrupts},
		{"duplicate", st.Duplicates},
	} {
		fmt.Fprintf(w, "causeway_fault_injections_total{kind=%q} %d\n", kv.kind, kv.n)
	}
}

// CorruptBytes deterministically mangles a copy of b by flipping one byte
// chosen by the schedule stream (an empty input gains one garbage byte).
// The original is never modified.
func (in *Injector) CorruptBytes(b []byte) []byte {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := append([]byte(nil), b...)
	if len(out) == 0 {
		return []byte{0xff}
	}
	i := in.rng.Intn(len(out))
	out[i] ^= 0xff
	return out
}

// CorruptFrame produces corrupted variants of a wire frame payload for
// codec tests: depending on the schedule stream it flips the kind byte,
// zeroes the request ID, or truncates the frame — the three corruption
// classes transport.DecodeReplyFrame must reject by name.
func (in *Injector) CorruptFrame(frame []byte) []byte {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := append([]byte(nil), frame...)
	if len(out) == 0 {
		return out
	}
	switch in.rng.Intn(3) {
	case 0: // unknown kind byte
		out[0] ^= 0x7f
	case 1: // reply for request id 0
		for i := 1; i < len(out) && i < 9; i++ {
			out[i] = 0
		}
	default: // truncation mid-field
		out = out[:1+in.rng.Intn(len(out)-1)]
	}
	return out
}

// WrapClient wraps c so each Call/Post first consults the schedule.
// Client-side semantics: Delay sleeps then proceeds; Drop loses the
// request — with a deadline set the caller waits it out and gets
// transport.ErrDeadlineExceeded (exactly what a real network drop looks
// like), without one it fails immediately with ErrInjected; Disconnect
// closes the underlying client first, so the call and everything after it
// fails with the transport's own connection errors; Corrupt mangles the
// request body (the servant-side unmarshal fails); Duplicate is a
// server-side notion and passes through.
func (in *Injector) WrapClient(c transport.Client) transport.Client {
	return &faultClient{inner: c, in: in}
}

type faultClient struct {
	inner transport.Client
	in    *Injector
}

var _ transport.Client = (*faultClient)(nil)

func (c *faultClient) Call(req transport.Request) (transport.Reply, error) {
	switch c.in.next() {
	case Delay:
		time.Sleep(c.in.plan.Delay)
	case Drop:
		if req.Timeout > 0 {
			time.Sleep(req.Timeout)
			return transport.Reply{}, fmt.Errorf("faultinject: dropped call %s: %w", req.Operation, transport.ErrDeadlineExceeded)
		}
		return transport.Reply{}, fmt.Errorf("faultinject: dropped call %s: %w", req.Operation, ErrInjected)
	case Disconnect:
		c.inner.Close()
		return transport.Reply{}, fmt.Errorf("faultinject: disconnected before call %s: %w", req.Operation, ErrInjected)
	case Corrupt:
		req.Body = c.in.CorruptBytes(req.Body)
	}
	return c.inner.Call(req)
}

func (c *faultClient) Post(req transport.Request) error {
	switch c.in.next() {
	case Delay:
		time.Sleep(c.in.plan.Delay)
	case Drop:
		// A lost oneway is silent by definition: report success.
		return nil
	case Disconnect:
		c.inner.Close()
		return fmt.Errorf("faultinject: disconnected before post %s: %w", req.Operation, ErrInjected)
	case Corrupt:
		req.Body = c.in.CorruptBytes(req.Body)
	}
	return c.inner.Post(req)
}

func (c *faultClient) Close() error { return c.inner.Close() }

// WrapHandler wraps h so each incoming request first consults the
// schedule. Server-side semantics: Delay sleeps before dispatch; Drop
// accepts the request and never responds — the genuine hung-server path
// that only a client deadline can unwedge; Disconnect is treated as Drop
// (a handler has no connection to sever); Corrupt mangles the reply body;
// Duplicate responds twice, exercising the client's discard path.
func (in *Injector) WrapHandler(h transport.Handler) transport.Handler {
	return func(conn transport.ConnID, req transport.Request, respond transport.Responder) {
		switch in.next() {
		case Delay:
			time.Sleep(in.plan.Delay)
		case Drop, Disconnect:
			return // swallow: the caller's deadline is the only way out
		case Corrupt:
			h(conn, req, func(rep transport.Reply) {
				rep.Body = in.CorruptBytes(rep.Body)
				respond(rep)
			})
			return
		case Duplicate:
			h(conn, req, func(rep transport.Reply) {
				respond(rep)
				respond(rep)
			})
			return
		}
		h(conn, req, respond)
	}
}
