module causeway

go 1.22
